"""The repo-specific AST lint rules (stdlib ``ast``, zero deps).

Every rule has a stable ID, a default severity, a one-line rationale,
and a fix hint.  Rules register themselves in :data:`RULES` via the
:func:`rule` decorator, so adding a rule is one function; per-path
scoping (e.g. REPRO-G001 only applies under ``groute``/``droute``/
``ilp``) and severity escalation live on the :class:`Rule` record and
are applied by :mod:`repro.analyze.linter`.

Rule families:

* ``REPRO-D*`` — determinism hazards (the CR&P results in Table III are
  only reproducible if routing/placement decisions are bit-stable).
* ``REPRO-G*`` — guard hazards (loops that can outlive their deadline,
  handlers that can swallow ``DeadlineExceeded``).
* ``REPRO-O*`` — observability conventions (span/metric names).
* ``REPRO-C*`` — classics (mutable defaults, shadowed builtins).
* ``REPRO-X*`` — cross-process safety (state that silently diverges
  between the parent and ``repro.par`` pool workers).
* ``REPRO-R*`` — robustness (durability of on-disk artifacts; a crash
  mid-write must never leave a truncated report or checkpoint behind).

Suppress one occurrence with ``# repro: noqa:RULE-ID`` on the flagged
line (comma-separate multiple IDs; a bare ``# repro: noqa`` suppresses
every rule on that line).  A justification after an em-dash is
conventional: ``# repro: noqa:REPRO-D003 — bounds come from literals``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.analyze.findings import Severity

#: (node-or-line, message) pairs produced by a checker
RawFinding = "tuple[ast.AST | int, str]"


@dataclass(frozen=True, slots=True)
class Rule:
    """Metadata + checker for one lint rule."""

    id: str  # repro: noqa:REPRO-C002 — the rule's public ID field
    severity: Severity
    summary: str
    hint: str
    #: only lint files whose posix path contains one of these fragments
    #: (empty tuple = every file)
    path_scope: tuple[str, ...] = ()
    #: never lint files whose posix path contains one of these fragments
    path_exclude: tuple[str, ...] = ()
    #: escalate severity to ERROR on files matching these fragments
    escalate_paths: tuple[str, ...] = ()

    def applies_to(self, posix_path: str) -> bool:
        if any(frag in posix_path for frag in self.path_exclude):
            return False
        if not self.path_scope:
            return True
        return any(frag in posix_path for frag in self.path_scope)

    def severity_for(self, posix_path: str) -> Severity:
        if self.escalate_paths and any(
            frag in posix_path for frag in self.escalate_paths
        ):
            return Severity.ERROR
        return self.severity


class ModuleContext:
    """Everything a checker needs about one parsed module."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree


Checker = Callable[[ModuleContext], Iterator[tuple[object, str]]]

RULES: dict[str, Rule] = {}
CHECKERS: dict[str, Checker] = {}

#: directories whose code makes routing/placement decisions — set-order
#: iteration there is an ordering hazard, not a style nit
DECISION_PATHS = (
    "/groute/", "/droute/", "/ilp/", "/core/", "/legalizer/", "/flow/",
)

#: directories whose loops must stay under the guard's deadline control
DEADLINE_PATHS = ("/groute/", "/droute/", "/ilp/")


def rule(
    rule_id: str,
    severity: Severity,
    summary: str,
    hint: str,
    path_scope: tuple[str, ...] = (),
    path_exclude: tuple[str, ...] = (),
    escalate_paths: tuple[str, ...] = (),
) -> Callable[[Checker], Checker]:
    """Register a checker; the registry is what makes rules extensible."""

    def register(checker: Checker) -> Checker:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULES[rule_id] = Rule(
            id=rule_id,
            severity=severity,
            summary=summary,
            hint=hint,
            path_scope=path_scope,
            path_exclude=path_exclude,
            escalate_paths=escalate_paths,
        )
        CHECKERS[rule_id] = checker
        return checker

    return register


def rule_table() -> dict[str, str]:
    """Rule ID -> one-line summary (for report documents and docs)."""
    return {rid: spec.summary for rid, spec in sorted(RULES.items())}


# --------------------------------------------------------------- helpers


def _call_name(node: ast.Call) -> str:
    """Dotted name of a call target (best effort): ``a.b.c`` or ``f``."""
    parts: list[str] = []
    target: ast.expr = node.func
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name):
        parts.append(target.id)
    return ".".join(reversed(parts))


def _contains_call(node: ast.AST, name: str) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and _call_name(sub).endswith(name):
            return True
    return False


def _module_aliases(tree: ast.Module, module: str) -> set[str]:
    """Local names bound to ``import module`` (honoring ``as`` aliases)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.name == module:
                    aliases.add(a.asname or module)
    return aliases


def _from_imports(tree: ast.Module, module: str) -> dict[str, str]:
    """Local name -> original name for ``from module import ...``."""
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for a in node.names:
                names[a.asname or a.name] = a.name
    return names


# ---------------------------------------------------- REPRO-D: determinism


@rule(
    "REPRO-D001",
    Severity.ERROR,
    "global or unseeded `random` use breaks run-to-run determinism",
    "thread a seeded `random.Random(seed)` through the call site "
    "(see `CrpConfig.seed` / `DesignSpec.seed`)",
)
def _check_global_random(ctx: ModuleContext):
    aliases = _module_aliases(ctx.tree, "random")
    from_names = _from_imports(ctx.tree, "random")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in aliases
        ):
            if func.attr == "Random":
                if not node.args and not node.keywords:
                    yield node, "unseeded random.Random() — seed it explicitly"
            else:
                yield node, (
                    f"random.{func.attr}() uses the shared global RNG"
                )
        elif isinstance(func, ast.Name) and func.id in from_names:
            original = from_names[func.id]
            if original == "Random":
                if not node.args and not node.keywords:
                    yield node, "unseeded Random() — seed it explicitly"
            else:
                yield node, (
                    f"random.{original}() (imported as {func.id}) uses the "
                    "shared global RNG"
                )


def _is_set_expr(node: ast.expr) -> bool:
    """Syntactically set-valued: literal, set()/frozenset(), comp, algebra."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _is_set_annotation(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    return isinstance(node, ast.Name) and node.id in (
        "set", "frozenset", "Set", "FrozenSet",
    )


def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk one scope's nodes, pruning nested function bodies."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(node))


def _iterated_exprs(node: ast.AST) -> Iterator[ast.expr]:
    if isinstance(node, ast.For):
        yield node.iter
    elif isinstance(
        node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
    ):
        for gen in node.generators:
            yield gen.iter


#: consuming a set through these is order-independent by construction
_ORDER_SAFE_CALLS = frozenset(
    ("sorted", "set", "frozenset", "min", "max", "sum", "any", "all", "len")
)


def _order_safe_comps(scope: ast.AST) -> set[int]:
    """ids of comprehensions fed straight into an order-safe call."""
    safe: set[int] = set()
    for node in _scope_walk(scope):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_SAFE_CALLS
        ):
            for arg in node.args:
                if isinstance(
                    arg,
                    (ast.ListComp, ast.SetComp, ast.GeneratorExp),
                ):
                    safe.add(id(arg))
    return safe


@rule(
    "REPRO-D002",
    Severity.WARNING,
    "iteration order over a set is hash-dependent; feeding it into a "
    "routing/placement decision is nondeterministic",
    "iterate `sorted(the_set)` (or restructure so order cannot matter)",
    escalate_paths=DECISION_PATHS,
)
def _check_set_iteration(ctx: ModuleContext):
    # Track local names bound to set-valued expressions or annotations,
    # one scope at a time (module scope counts as one scope); deliberately
    # NOT tracking parameters — set-typed args are often consumed
    # order-independently (unions, min/max) and would drown real hits.
    scopes: list[ast.AST] = [ctx.tree] + [
        n
        for n in ast.walk(ctx.tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for scope in scopes:
        set_names: set[str] = set()
        for node in _scope_walk(scope):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        set_names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _is_set_annotation(node.annotation) or (
                    node.value is not None and _is_set_expr(node.value)
                ):
                    set_names.add(node.target.id)
        safe_comps = _order_safe_comps(scope)
        for node in _scope_walk(scope):
            if id(node) in safe_comps:
                continue
            for it in _iterated_exprs(node):
                if _is_set_expr(it):
                    yield it, "iterating a set expression directly"
                elif isinstance(it, ast.Name) and it.id in set_names:
                    yield it, f"iterating set-typed local `{it.id}`"


@rule(
    "REPRO-D003",
    Severity.ERROR,
    "float equality (`==`/`!=`) is representation-dependent",
    "compare with an explicit tolerance: `abs(x - y) <= eps` or "
    "`math.isclose`; for zero tests use `abs(x) <= eps` or `x <= 0.0`",
    path_exclude=("tests/", "/test_", "conftest"),
)
def _check_float_equality(ctx: ModuleContext):
    def is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp):
            node = node.operand
        return isinstance(node, ast.Constant) and isinstance(node.value, float)

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if is_float_literal(operands[i]) or is_float_literal(
                operands[i + 1]
            ):
                yield node, "float literal compared with ==/!="


@rule(
    "REPRO-D004",
    Severity.WARNING,
    "filesystem listing order is platform-dependent",
    "wrap the listing in `sorted(...)` before iterating",
)
def _check_fs_order(ctx: ModuleContext):
    listing_attrs = ("iterdir", "glob", "rglob", "listdir", "scandir")

    def is_listing_call(node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = _call_name(node)
        return name.split(".")[-1] in listing_attrs

    for node in ast.walk(ctx.tree):
        iters: list[ast.expr] = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if is_listing_call(it):
                yield it, f"iterating `{_call_name(it)}()` without sorting"


# --------------------------------------------------------- REPRO-G: guard


@rule(
    "REPRO-G001",
    Severity.ERROR,
    "unbounded loop in a routing/solver engine without a Deadline check",
    "call `check_deadline(\"<site>\")` or `DeadlineTicker.tick()` inside "
    "the loop (see `repro.guard.deadline`), or bound the loop with an "
    "explicit counter",
    path_scope=DEADLINE_PATHS,
)
def _check_unbounded_loops(ctx: ModuleContext):
    def is_bounded(test: ast.expr) -> bool:
        """A comparison anywhere in the test counts as an explicit bound."""
        return any(isinstance(n, ast.Compare) for n in ast.walk(test))

    def checks_deadline(node: ast.AST) -> bool:
        """Either a direct check or a strided DeadlineTicker tick."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                name = _call_name(sub).split(".")[-1]
                if name in ("check_deadline", "tick"):
                    return True
        return False

    # A while loop is compliant when a deadline check is reachable once
    # per iteration: inside its own body, or inside an enclosing loop's
    # body (the enclosing loop re-checks between inner runs).
    loops: list[tuple[ast.While, bool]] = []  # (node, covered by ancestor)
    def visit(node: ast.AST, covered: bool) -> None:
        for child in ast.iter_child_nodes(node):
            child_covered = covered
            if isinstance(child, (ast.While, ast.For)):
                child_covered = covered or checks_deadline(child)
                if isinstance(child, ast.While):
                    loops.append((child, covered))
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_covered = False  # new frame, new obligations
            visit(child, child_covered)

    visit(ctx.tree, False)
    for loop, covered in loops:
        if is_bounded(loop.test):
            continue
        if covered or checks_deadline(loop):
            continue
        yield loop, "unbounded `while` loop never checks the deadline stack"


_BROAD_EXCEPTIONS = ("Exception", "BaseException")


@rule(
    "REPRO-G002",
    Severity.ERROR,
    "bare/overbroad `except` can swallow DeadlineExceeded and "
    "fault-injection errors",
    "catch the specific exception, re-raise, or handle "
    "`DeadlineExceeded` in a preceding clause",
)
def _check_broad_except(ctx: ModuleContext):
    def exception_names(type_node: ast.expr | None) -> list[str]:
        if type_node is None:
            return []
        nodes = (
            type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        )
        names = []
        for n in nodes:
            if isinstance(n, ast.Attribute):
                names.append(n.attr)
            elif isinstance(n, ast.Name):
                names.append(n.id)
        return names

    def reraises(handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(n, ast.Raise) for n in ast.walk(handler)
        )

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Try):
            continue
        deadline_handled = False
        for handler in node.handlers:
            names = exception_names(handler.type)
            if handler.type is None:
                if not reraises(handler):
                    yield handler, "bare `except:` swallows every exception"
            elif any(name in _BROAD_EXCEPTIONS for name in names):
                if not (reraises(handler) or deadline_handled):
                    yield handler, (
                        "`except "
                        + "/".join(n for n in names if n in _BROAD_EXCEPTIONS)
                        + "` without re-raise can swallow DeadlineExceeded"
                    )
            if any("Deadline" in name for name in names):
                deadline_handled = True


@rule(
    "REPRO-G003",
    Severity.WARNING,
    "`time.time()` is wall-clock and jumps on NTP adjustment",
    "use `time.monotonic()` for deadlines or `time.perf_counter()` "
    "for measurements",
)
def _check_wall_clock(ctx: ModuleContext):
    aliases = _module_aliases(ctx.tree, "time")
    from_names = _from_imports(ctx.tree, "time")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id in aliases
        ):
            yield node, "time.time() used for timing logic"
        elif (
            isinstance(func, ast.Name)
            and from_names.get(func.id) == "time"
        ):
            yield node, (
                f"time.time() (imported as {func.id}) used for timing logic"
            )


# -------------------------------------------------- REPRO-O: observability

_OBS_METHODS = ("span", "count", "gauge", "observe")
_OBS_RECEIVER_NAMES = ("metrics", "tracer", "obs")
_OBS_FACTORIES = ("get_metrics", "get_tracer", "ensure_tracer")
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[A-Za-z0-9_\-]+)+$")
_PREFIX_RE = re.compile(r"^[a-z][a-z0-9_]*\.([A-Za-z0-9_\-]+\.)*[A-Za-z0-9_\-]*$")


def _obs_receiver(node: ast.expr) -> bool:
    """Does this expression look like a metrics registry or tracer?"""
    if isinstance(node, ast.Name):
        return node.id in _OBS_RECEIVER_NAMES or node.id.endswith(
            ("metrics", "tracer")
        )
    if isinstance(node, ast.Attribute):
        return node.attr in _OBS_RECEIVER_NAMES or node.attr.endswith(
            ("metrics", "tracer")
        )
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _OBS_FACTORIES
    return False


@rule(
    "REPRO-O001",
    Severity.ERROR,
    "span/metric name must follow the `<layer>.<event>` obs convention",
    "use a lowercase dotted name (`groute.maze_calls`, `flow.GR`); see "
    "README \"Observability\"",
)
def _check_obs_names(ctx: ModuleContext):
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _OBS_METHODS
            and _obs_receiver(func.value)
        ):
            continue
        if not node.args:
            continue
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if not _NAME_RE.match(arg.value):
                yield arg, (
                    f"obs name {arg.value!r} does not match "
                    "`<layer>.<event>`"
                )
        elif isinstance(arg, ast.JoinedStr) and arg.values:
            first = arg.values[0]
            if isinstance(first, ast.Constant) and isinstance(
                first.value, str
            ):
                prefix = first.value
                if "." in prefix and not _PREFIX_RE.match(prefix):
                    yield arg, (
                        f"obs name prefix {prefix!r} does not match "
                        "`<layer>.<event>`"
                    )


# ----------------------------------------------------- REPRO-C: classics


@rule(
    "REPRO-C001",
    Severity.ERROR,
    "mutable default argument is shared across calls",
    "default to `None` and create the container in the body, or use "
    "`dataclasses.field(default_factory=...)`",
)
def _check_mutable_defaults(ctx: ModuleContext):
    mutable_calls = ("list", "dict", "set", "defaultdict")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in mutable_calls
            )
            if bad:
                yield default, (
                    f"mutable default argument in `{node.name}()`"
                )


#: builtins worth protecting — shadowing these has bitten real routers
_SHADOWABLE = frozenset(
    (
        "list", "dict", "set", "tuple", "str", "int", "float", "bool",
        "id", "type", "input", "len", "max", "min", "sum", "map",
        "filter", "next", "range", "sorted", "hash", "vars", "bytes",
        "all", "any", "iter", "open", "print", "dir", "bin", "format",
    )
)


@rule(
    "REPRO-C002",
    Severity.WARNING,
    "assignment shadows a Python builtin",
    "rename the variable (e.g. `id` -> `ident`, `type` -> `kind`)",
)
def _check_shadowed_builtins(ctx: ModuleContext):
    # Methods live in class namespaces, so `Lexer.next()` shadows nothing.
    methods: set[int] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.add(id(member))
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            if node.id in _SHADOWABLE:
                yield node, f"`{node.id}` shadows the builtin"
        elif isinstance(node, ast.arg) and node.arg in _SHADOWABLE:
            yield node, f"parameter `{node.arg}` shadows the builtin"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name in _SHADOWABLE and id(node) not in methods:
                yield node, f"function `{node.name}` shadows the builtin"


# ---------------------------------------------------- REPRO-P: performance


#: tuple-node type names whose dict/set containers mark an oracle-style
#: sparse node map in detailed routing (vs the flat DrouteIndex arrays)
_NODE_KEY_NAMES = frozenset(("LNode", "Node"))


def _node_keyed_container(annotation: ast.expr) -> bool:
    """True for ``dict[LNode, ...]`` / ``set[LNode]`` style annotations."""
    if not isinstance(annotation, ast.Subscript):
        return False
    base = annotation.value
    if not (isinstance(base, ast.Name) and base.id in ("dict", "set")):
        return False
    key = annotation.slice
    if isinstance(key, ast.Tuple) and key.elts:
        key = key.elts[0]
    return isinstance(key, ast.Name) and key.id in _NODE_KEY_NAMES


@rule(
    "REPRO-P001",
    Severity.WARNING,
    "sparse per-element pricing/state inside a routing hot path",
    "price through the dense `repro.grid.field.CostField` maps "
    "(`wire_cost_maps()`, `run_cost()`, `path_cost()`) instead of scalar "
    "`edge_cost` calls per edge, and key detailed-routing search state "
    "by flat `repro.droute.indexed.DrouteIndex` node ids instead of "
    "dict-of-tuple node maps; keep the scalar/dict oracles only as "
    "explicit fallbacks",
    path_scope=("/groute/", "/droute/"),
)
def _check_scalar_cost_loops(ctx: ModuleContext):
    loop_types = (
        ast.For,
        ast.While,
        ast.ListComp,
        ast.SetComp,
        ast.DictComp,
        ast.GeneratorExp,
    )
    flagged: set[int] = set()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, loop_types):
            continue
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and _call_name(sub).split(".")[-1] == "edge_cost"
                and id(sub) not in flagged
            ):
                flagged.add(id(sub))
                yield sub, (
                    "scalar `edge_cost` call inside a loop — use the "
                    "CostField dense maps"
                )
    # Detailed routing only: a dict/set keyed by tuple nodes is the
    # oracle representation; hot-path state belongs in the flat indexed
    # arrays (``nid = (layer * ny + iy) * nx + ix``).
    if "/droute/" not in ctx.path.replace("\\", "/"):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.AnnAssign) and _node_keyed_container(
            node.annotation
        ):
            yield node, (
                "dict-of-tuple node map in detailed routing — key search "
                "state by DrouteIndex flat node ids"
            )


def _nets_scan_base(expr: ast.expr) -> ast.expr | None:
    """The ``design.nets`` attribute access an iterable derives from.

    Recognizes ``design.nets``, ``self.design.nets``, and the dict-view
    wrappers ``.values()`` / ``.items()`` / ``.keys()`` over either;
    returns None for anything else.
    """
    if isinstance(expr, ast.Call):
        if (
            isinstance(expr.func, ast.Attribute)
            and expr.func.attr in ("values", "items", "keys")
            and not expr.args
            and not expr.keywords
        ):
            expr = expr.func.value
        else:
            return None
    if not (isinstance(expr, ast.Attribute) and expr.attr == "nets"):
        return None
    base = expr.value
    if isinstance(base, ast.Name) and base.id == "design":
        return expr
    if isinstance(base, ast.Attribute) and base.attr == "design":
        return expr
    return None


@rule(
    "REPRO-P002",
    Severity.WARNING,
    "full-design net scan inside the CR&P iteration hot path",
    "iterating every `design.nets` entry per iteration is the O(all-nets) "
    "accounting the incremental kernel replaces — price through "
    "`GlobalRouter.net_cost` (O(dirty) behind `NetCostCache`) or an "
    "iteration-scoped `repro.core.fastecc.EccCache`, and keep any "
    "intentional full scan annotated with a reasoned noqa",
    path_scope=("/core/",),
)
def _check_full_net_scans(ctx: ModuleContext):
    for node in ast.walk(ctx.tree):
        for iter_expr in _iterated_exprs(node):
            hit = _nets_scan_base(iter_expr)
            if hit is not None:
                yield hit, (
                    "full `design.nets` scan in the CR&P hot path — "
                    "account incrementally or annotate why the scan "
                    "must stay"
                )


# ---------------------------------------------- REPRO-X: cross-process safety

#: constructor calls that bind a mutable container at module scope
_MUTABLE_CTORS = frozenset(
    ("list", "dict", "set", "defaultdict", "deque", "Counter", "OrderedDict")
)


def _is_mutable_module_value(node: ast.expr) -> str | None:
    """Why this module-scope value is worker-hostile (None = it is not).

    Mutable containers at module scope are per-process state: the pool
    parent mutates its copy, ``fork``-ed workers keep a stale snapshot,
    and ``spawn``-ed workers re-import a fresh one — three diverging
    views of the "same" variable.  A module-scope ``random.Random`` is
    the same hazard with an RNG stream attached.
    """
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return "module-level mutable container literal"
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
        return "module-level mutable comprehension result"
    if isinstance(node, ast.Call):
        name = _call_name(node)
        short = name.split(".")[-1]
        if short in _MUTABLE_CTORS:
            return f"module-level mutable container from `{short}()`"
        if short == "Random" or name == "random.Random":
            return "module-level RNG instance"
    return None


@rule(
    "REPRO-X001",
    Severity.ERROR,
    "module-level mutable state or RNG in pool-worker code diverges "
    "between the parent and `repro.par` workers",
    "pass the state through the task payload / mutation log instead, or "
    "make the binding immutable (tuple/frozenset/constant); RNG streams "
    "must be built per call from an explicit seed",
    path_scope=("/par/",),
)
def _check_worker_module_state(ctx: ModuleContext):
    # Only genuine module scope matters: names a `spawn`-ed worker
    # rebinds at import time.  Walking `ctx.tree.body` directly (not
    # `ast.walk`) keeps function/class bodies out of scope — locals and
    # class attributes are rebuilt per process and cannot diverge.
    for stmt in ctx.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        reason = _is_mutable_module_value(value)
        if reason is None:
            continue
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if names == ["__all__"]:
            # The export list is written once and only read; still,
            # prefer a tuple so the rule stays exception-free.
            continue
        label = ", ".join(f"`{n}`" for n in names) or "binding"
        yield value, f"{reason} bound to {label} in worker-reachable code"


# ------------------------------------------------- REPRO-R: robustness

#: serializer calls whose output landing in a plain write is a
#: torn-file hazard (a crash mid-write truncates the artifact)
_SERIALIZE_DUMPS = frozenset(("json.dumps", "pickle.dumps"))
_SERIALIZE_DUMP = frozenset(("json.dump", "pickle.dump"))
_DURABLE_SUFFIXES = (".json", ".ckpt")
_DURABLE_FRAGMENTS = ("ckpt", "checkpoint")


def _contains_serializer(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and _call_name(sub) in _SERIALIZE_DUMPS:
            return True
    return False


def _durable_path_constant(node: ast.expr) -> bool:
    """Does this expression mention a `.json`/checkpoint path literal?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            value = sub.value.lower()
            if value.endswith(_DURABLE_SUFFIXES) or any(
                frag in value for frag in _DURABLE_FRAGMENTS
            ):
                return True
    return False


@rule(
    "REPRO-R001",
    Severity.ERROR,
    "non-atomic write of a JSON/checkpoint artifact; a crash mid-write "
    "leaves a truncated file that poisons the next consumer",
    "write through `repro.ckpt.atomic_write(path, data)` (temp file in "
    "the target directory + fsync + `os.rename`)",
    path_exclude=("/ckpt/atomic",),
)
def _check_non_atomic_writes(ctx: ModuleContext):
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        short = name.split(".")[-1]
        if short in ("write_text", "write_bytes") and any(
            _contains_serializer(arg) for arg in node.args
        ):
            yield node, (
                f"`.{short}()` of serialized data is not atomic"
            )
        elif name in _SERIALIZE_DUMP and len(node.args) >= 2:
            yield node, (
                f"`{name}()` streams into an open handle; a crash "
                "mid-stream truncates the file"
            )
        elif (
            (short == "open" or name == "open")
            and len(node.args) >= 2
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)
            and node.args[1].value in ("w", "wb")
            and _durable_path_constant(node.args[0])
        ):
            yield node, (
                "`open(..., \"w\")` on a JSON/checkpoint path is not "
                "atomic"
            )

"""Flow-invariant checks over loaded ``Design``/``GlobalRouter`` state.

The runtime guard (PR 2) protects a *running* flow; this module audits
a *finished or loaded* state without running anything: the properties
CR&P's results depend on (paper Eqs. 5-9) must hold for any state that
claims to be a valid flow snapshot.

Rule families (``FLOW-*`` IDs, same :class:`Finding` currency as the
code linter):

* ``FLOW-A00x`` — accounting: graph demand arrays must equal what the
  committed routes imply (Eq. 9 bookkeeping), and can never go negative.
* ``FLOW-C00x`` — connectivity: every net's route must connect all its
  terminals, contain no dangling segments, and stay inside its guides.
* ``FLOW-L001`` — legality: the placement must satisfy Eqs. 5-8.
* ``FLOW-M00x`` — ILP well-formedness: sane bounds, finite costs,
  non-degenerate constraints.
"""

from __future__ import annotations

import math

from repro.analyze.findings import Finding, Severity
from repro.db import Design, check_legality
from repro.grid import EdgeKind, GridEdge
from repro.obs import get_metrics, get_tracer

Node = tuple[int, int, int]

#: FLOW rule ID -> one-line summary (mirrors ``rules.rule_table()``)
FLOW_RULES: dict[str, str] = {
    "FLOW-A001": "graph demand does not match the committed routes",
    "FLOW-A002": "negative usage in a demand array",
    "FLOW-C001": "net terminals are not connected by the route",
    "FLOW-C002": "route has a dangling segment (component without terminal)",
    "FLOW-C003": "routed node not covered by the net's guides",
    "FLOW-C004": "route edge is outside the routing graph",
    "FLOW-L001": "placement violates a legality constraint (Eqs. 5-8)",
    "FLOW-M001": "ILP variable has inconsistent bounds or non-finite cost",
    "FLOW-M002": "ILP constraint is degenerate or non-finite",
}

_HINTS = {
    "FLOW-A001": "a commit/rip-up or rollback desynced the arrays; "
    "rebuild with GlobalRouter.restore_route or re-route the net",
    "FLOW-A002": "usage arrays only decrease on rip-up; a double rip-up "
    "or bad rollback drove one below zero",
    "FLOW-C001": "re-route the net; a partial rip-up left its terminals "
    "in separate components",
    "FLOW-C002": "remove the orphan edges or re-route; dangling demand "
    "inflates congestion for every other net",
    "FLOW-C003": "regenerate guides after the last route change "
    "(GlobalRouter.guides())",
    "FLOW-C004": "the edge's (layer, gx, gy) is off the graph; the "
    "route was built against a different grid",
    "FLOW-L001": "run the legalizer (repro.legalizer) before handing "
    "the placement to detailed routing",
    "FLOW-M001": "fix the model builder; solvers treat bad bounds as "
    "infeasible or (worse) silently clamp",
    "FLOW-M002": "drop empty constraints and check the cost/rhs math "
    "for NaN/inf leaks",
}


def _finding(rule: str, where: str, message: str) -> Finding:
    return Finding(
        rule=rule,
        severity=Severity.ERROR,
        path=where,
        line=0,
        message=message,
        hint=_HINTS.get(rule, ""),
    )


# ---------------------------------------------------------- accounting


def check_accounting(router) -> list[Finding]:
    """FLOW-A001/A002 over a :class:`repro.groute.GlobalRouter`."""
    where = f"design:{router.design.name}"
    findings = [
        _finding("FLOW-A001", where, message)
        for message in router.accounting_errors()
    ]
    for layer, usage in enumerate(router.graph.wire_usage):
        if usage.size and float(usage.min()) < 0:
            findings.append(
                _finding(
                    "FLOW-A002",
                    where,
                    f"negative wire usage on layer {layer} "
                    f"(min={float(usage.min()):g})",
                )
            )
    for layer, usage in enumerate(router.graph.via_usage):
        if usage.size and int(usage.min()) < 0:
            findings.append(
                _finding(
                    "FLOW-A002",
                    where,
                    f"negative via usage below layer {layer + 1} "
                    f"(min={int(usage.min())})",
                )
            )
    return findings


# -------------------------------------------------------- connectivity


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[Node, Node] = {}

    def find(self, node: Node) -> Node:
        root = self.parent.setdefault(node, node)
        while root != self.parent[root]:
            root = self.parent[root]
        while self.parent[node] != root:  # path compression
            self.parent[node], node = root, self.parent[node]
        return root

    def union(self, a: Node, b: Node) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _edge_valid(graph, edge: GridEdge) -> bool:
    if edge.kind is EdgeKind.WIRE:
        return graph.valid_wire_edge(edge)
    return graph.valid_via_edge(edge)


def check_connectivity(router) -> list[Finding]:
    """FLOW-C001/C002/C004 over every committed net route."""
    findings: list[Finding] = []
    graph = router.graph
    for net_name in sorted(router.routes):
        route = router.routes[net_name]
        where = f"net:{net_name}"
        uf = _UnionFind()
        bad_edges = 0
        for edge in sorted(route.edges):
            if not _edge_valid(graph, edge):
                bad_edges += 1
                continue
            a, b = edge.endpoints(graph)
            uf.union(a, b)
        if bad_edges:
            findings.append(
                _finding(
                    "FLOW-C004",
                    where,
                    f"{bad_edges} route edge(s) outside the routing graph",
                )
            )
        terminals = list(route.terminals)
        if not terminals:
            continue
        for node in terminals:
            uf.find(node)  # make isolated terminals their own component
        roots = {uf.find(t) for t in terminals}
        if len(roots) > 1:
            findings.append(
                _finding(
                    "FLOW-C001",
                    where,
                    f"terminals split into {len(roots)} components "
                    f"({len(terminals)} terminals, "
                    f"{len(route.edges)} edges)",
                )
            )
        # Components formed purely by edges that reach no terminal are
        # dangling wire: they consume capacity but connect nothing.
        terminal_roots = {uf.find(t) for t in terminals}
        dangling = {
            uf.find(node)
            for node in uf.parent
            if uf.find(node) not in terminal_roots
        }
        if dangling:
            findings.append(
                _finding(
                    "FLOW-C002",
                    where,
                    f"{len(dangling)} route component(s) touch no terminal",
                )
            )
    return findings


def check_guide_coverage(router, guides=None) -> list[Finding]:
    """FLOW-C003: every routed node must fall inside a same-layer guide.

    ``guides`` defaults to freshly-emitted ones (which cover by
    construction); pass a stale/externally-loaded guide set to audit it
    against the current routes.
    """
    if guides is None:
        guides = router.guides()
    findings: list[Finding] = []
    grid = router.grid
    graph = router.graph
    for net_name in sorted(router.routes):
        route = router.routes[net_name]
        rects_by_layer: dict[int, list] = {}
        for g in guides.get(net_name, ()):
            rects_by_layer.setdefault(g.layer, []).append(g.rect)
        uncovered = 0
        nodes: set[Node] = set(route.terminals)
        for edge in route.edges:
            if not _edge_valid(graph, edge):
                continue  # FLOW-C004's problem, not coverage's
            a, b = edge.endpoints(graph)
            nodes.add(a)
            nodes.add(b)
        for layer, gx, gy in sorted(nodes):
            center = grid.rect_of(gx, gy).center
            if not any(
                r.contains_point(center) for r in rects_by_layer.get(layer, ())
            ):
                uncovered += 1
        if uncovered:
            findings.append(
                _finding(
                    "FLOW-C003",
                    f"net:{net_name}",
                    f"{uncovered} routed node(s) not covered by guides",
                )
            )
    return findings


# ------------------------------------------------------------ legality


def check_placement(design: Design) -> list[Finding]:
    """FLOW-L001: one finding per non-empty legality category."""
    report = check_legality(design)
    where = f"design:{design.name}"
    findings: list[Finding] = []
    categories = (
        ("out_of_die", report.out_of_die),
        ("off_site", report.off_site),
        ("off_row", report.off_row),
        ("bad_orient", report.bad_orient),
        ("overlaps", report.overlaps),
        ("blocked", report.blocked),
    )
    for category, items in categories:
        if not items:
            continue
        sample = items[0]
        label = " & ".join(sample) if isinstance(sample, tuple) else sample
        findings.append(
            _finding(
                "FLOW-L001",
                where,
                f"{len(items)} {category} violation(s), e.g. {label}",
            )
        )
    return findings


# ----------------------------------------------------------------- ILP


def check_model(model) -> list[Finding]:
    """FLOW-M001/M002 over a :class:`repro.ilp.IlpModel`."""
    findings: list[Finding] = []
    where = f"ilp:{model.name}"
    for v in model.variables:
        problems: list[str] = []
        if v.lower > v.upper:
            problems.append(f"lower {v.lower:g} > upper {v.upper:g}")
        if not (math.isfinite(v.lower) and math.isfinite(v.upper)):
            problems.append("non-finite bound")
        if not math.isfinite(v.cost):
            problems.append(f"non-finite cost {v.cost!r}")
        if problems:
            findings.append(
                _finding(
                    "FLOW-M001",
                    where,
                    f"variable {v.name!r}: " + "; ".join(problems),
                )
            )
    for i, c in enumerate(model.constraints):
        label = c.name or f"#{i}"
        problems = []
        if not c.terms:
            problems.append("no terms")
        if not math.isfinite(c.rhs):
            problems.append(f"non-finite rhs {c.rhs!r}")
        for term in c.terms:
            if not math.isfinite(term.coeff):
                problems.append(f"non-finite coeff on var {term.var}")
                break
        for term in c.terms:
            if not 0 <= term.var < model.num_variables:
                problems.append(f"variable index {term.var} out of range")
                break
        if problems:
            findings.append(
                _finding(
                    "FLOW-M002",
                    where,
                    f"constraint {label}: " + "; ".join(problems),
                )
            )
    return findings


# ------------------------------------------------------------- driver


def check_flow_state(
    design: Design,
    router=None,
    *,
    guides=None,
    model=None,
) -> list[Finding]:
    """Run every applicable invariant check; returns sorted findings.

    ``design`` alone audits placement legality; add a ``router`` for
    accounting/connectivity/coverage, a ``model`` for ILP shape.
    """
    tracer = get_tracer()
    metrics = get_metrics()
    findings: list[Finding] = []
    with tracer.span("analyze.check", design=design.name):
        findings.extend(check_placement(design))
        if router is not None:
            findings.extend(check_accounting(router))
            findings.extend(check_connectivity(router))
            findings.extend(check_guide_coverage(router, guides))
        if model is not None:
            findings.extend(check_model(model))
        metrics.count("analyze.invariant_findings", len(findings))
        if findings:
            metrics.count("analyze.invariant_violations")
    findings.sort(key=Finding.sort_key)
    return findings

"""Findings: the shared currency of both analysis engines.

A :class:`Finding` is one diagnostic — from the AST code linter
(``REPRO-*`` rules) or the flow-invariant checker (``FLOW-*`` rules) —
with a stable rule ID, a severity, a location, and a fix hint.  Findings
serialize to a SARIF-lite JSON document (``repro.analyze/1``) that
mirrors the ``repro.obs`` trace-document conventions (self-describing
``schema`` key, deterministic ordering) so CI can commit a baseline
report and diff regressions cleanly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

SCHEMA = "repro.analyze/1"


class Severity(str, Enum):
    """Finding severities; only ``ERROR`` fails a lint run."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


_SEVERITY_RANK = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass(frozen=True, slots=True)
class Finding:
    """One diagnostic from either analysis engine."""

    rule: str
    severity: Severity
    path: str
    line: int
    message: str
    hint: str = ""
    col: int = 0

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)

    def render(self) -> str:
        location = f"{self.path}:{self.line}" if self.line else self.path
        text = f"{location}: {self.severity.value} {self.rule}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


def finding_to_dict(finding: Finding) -> dict[str, object]:
    """JSON-able dict for one finding (SARIF-lite ``result`` analogue)."""
    out: dict[str, object] = {
        "ruleId": finding.rule,
        "severity": finding.severity.value,
        "path": finding.path,
        "line": finding.line,
        "message": finding.message,
    }
    if finding.col:
        out["col"] = finding.col
    if finding.hint:
        out["hint"] = finding.hint
    return out


def finding_from_dict(data: dict[str, object]) -> Finding:
    """Inverse of :func:`finding_to_dict`."""
    return Finding(
        rule=str(data["ruleId"]),
        severity=Severity(str(data["severity"])),
        path=str(data["path"]),
        line=int(data.get("line", 0)),  # type: ignore[arg-type]
        message=str(data["message"]),
        hint=str(data.get("hint", "")),
        col=int(data.get("col", 0)),  # type: ignore[arg-type]
    )


def severity_counts(findings: list[Finding]) -> dict[str, int]:
    counts = {s.value: 0 for s in Severity}
    for finding in findings:
        counts[finding.severity.value] += 1
    return counts


def report_document(
    findings: list[Finding],
    *,
    tool: str = "repro.analyze",
    files_scanned: int = 0,
    suppressed: int = 0,
    rule_table: dict[str, str] | None = None,
    extra: dict[str, object] | None = None,
) -> dict[str, object]:
    """Assemble the full SARIF-lite report payload (deterministic)."""
    ordered = sorted(findings, key=Finding.sort_key)
    per_rule: dict[str, int] = {}
    for finding in ordered:
        per_rule[finding.rule] = per_rule.get(finding.rule, 0) + 1
    doc: dict[str, object] = {"schema": SCHEMA, "tool": tool}
    if extra:
        doc.update(extra)
    doc["summary"] = {
        "files": files_scanned,
        "suppressed": suppressed,
        **severity_counts(ordered),
        "by_rule": dict(sorted(per_rule.items())),
    }
    if rule_table:
        doc["rules"] = dict(sorted(rule_table.items()))
    doc["findings"] = [finding_to_dict(f) for f in ordered]
    return doc


def load_report(path: str | Path) -> tuple[list[Finding], dict[str, object]]:
    """Read a report back as (findings, whole document)."""
    doc = json.loads(Path(path).read_text())
    findings = [finding_from_dict(d) for d in doc.get("findings", ())]
    return findings, doc


def write_report(path: str | Path, document: dict[str, object]) -> Path:
    """Write the JSON report document atomically; returns the path written."""
    # Function-level import: repro.ckpt depends on repro.obs/guard, and
    # repro.analyze is imported by CI before either — keep it lazy.
    from repro.ckpt.atomic import atomic_write

    path = Path(path)
    atomic_write(path, json.dumps(document, indent=1, sort_keys=False) + "\n")
    return path


def render_findings(findings: list[Finding], *, suppressed: int = 0) -> str:
    """Human report: findings ordered by location, worst severity first."""
    ordered = sorted(
        findings, key=lambda f: (_SEVERITY_RANK[f.severity], *f.sort_key())
    )
    lines = [f.render() for f in ordered]
    counts = severity_counts(findings)
    tally = ", ".join(f"{n} {sev}" for sev, n in counts.items() if n)
    summary = tally or "clean"
    if suppressed:
        summary += f" ({suppressed} suppressed)"
    lines.append(summary)
    return "\n".join(lines)

"""The AST lint engine: file walking, noqa suppression, rule dispatch.

Pure stdlib.  The engine parses each file once, hands the module to
every registered rule checker (:mod:`repro.analyze.rules`), and turns
the raw ``(node, message)`` pairs into :class:`Finding` records —
after dropping any occurrence suppressed by an inline
``# repro: noqa:RULE-ID`` comment on the flagged physical line.

The run itself is observable: it executes inside an ``analyze.lint``
span and counts ``analyze.files`` / ``analyze.findings`` /
``analyze.findings.<severity>`` / ``analyze.suppressed`` through
whatever ``repro.obs`` metrics registry is active.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.analyze.findings import Finding, Severity
from repro.analyze.rules import CHECKERS, RULES, ModuleContext
from repro.obs import get_metrics, get_tracer

#: ``# repro: noqa`` or ``# repro: noqa:REPRO-D001,REPRO-G002 — why``
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?::\s*([A-Za-z0-9,\- ]+))?")


@dataclass(frozen=True, slots=True)
class LintConfig:
    """What to run and where; empty tuples mean "no restriction"."""

    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()

    def active_rules(self) -> list[str]:
        rules = sorted(RULES)
        if self.select:
            rules = [r for r in rules if r in self.select]
        return [r for r in rules if r not in self.ignore]


@dataclass(slots=True)
class LintResult:
    """Aggregate outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    #: files that failed to parse, as (path, message) — reported as
    #: PARSE-ERROR findings too, so they can never pass silently
    parse_errors: list[tuple[str, str]] = field(default_factory=list)
    #: path -> {(line, rule)} suppressions that absorbed a finding;
    #: feeds the REPRO-U001 unused-suppression meta-rule
    used_suppressions: dict[str, set[tuple[int, str]]] = field(
        default_factory=dict
    )

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def ok(self) -> bool:
        return self.errors == 0


def suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """Per-line noqa map: line number -> suppressed rule IDs (None = all)."""
    out: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        spec = match.group(1)
        if spec is None:
            out[lineno] = None
        else:
            # The justification often follows an em/double dash; only the
            # comma-separated IDs before any dash-word count.
            ids = frozenset(
                token
                for token in (t.strip() for t in spec.split(","))
                if re.fullmatch(r"[A-Z]+-[A-Z]\d+", token)
            )
            out[lineno] = out.get(lineno) or ids
    return out


def _to_location(raw: object) -> tuple[int, int]:
    if isinstance(raw, ast.AST):
        return getattr(raw, "lineno", 0), getattr(raw, "col_offset", 0)
    if isinstance(raw, int):
        return raw, 0
    return 0, 0


def lint_source(
    source: str,
    path: str,
    config: LintConfig | None = None,
    *,
    used: set[tuple[int, str]] | None = None,
) -> tuple[list[Finding], int]:
    """Lint one module's source; returns (findings, suppressed count).

    When ``used`` is given, every suppression that actually absorbed a
    finding is recorded into it as ``(line, rule_id)`` — the raw
    material of the REPRO-U001 unused-suppression meta-rule.
    """
    config = config or LintConfig()
    posix = Path(path).as_posix()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        finding = Finding(
            rule="PARSE-ERROR",
            severity=Severity.ERROR,
            path=posix,
            line=exc.lineno or 0,
            message=f"file does not parse: {exc.msg}",
            hint="fix the syntax error; unparseable files are unlinted",
        )
        return [finding], 0
    ctx = ModuleContext(posix, source, tree)
    noqa = suppressions(source)
    findings: list[Finding] = []
    suppressed = 0
    for rule_id in config.active_rules():
        spec = RULES[rule_id]
        checker = CHECKERS.get(rule_id)
        if checker is None:
            # Whole-project rules (dataflow, REPRO-U001) are registered
            # in RULES for the report's rule table but have no per-file
            # checker; their engines emit findings directly.
            continue
        if not spec.applies_to(posix):
            continue
        severity = spec.severity_for(posix)
        for raw, message in checker(ctx):
            line, col = _to_location(raw)
            if line in noqa and (noqa[line] is None or rule_id in noqa[line]):
                suppressed += 1
                if used is not None:
                    used.add((line, rule_id))
                continue
            findings.append(
                Finding(
                    rule=rule_id,
                    severity=severity,
                    path=posix,
                    line=line,
                    message=message,
                    hint=spec.hint,
                    col=col,
                )
            )
    findings.sort(key=Finding.sort_key)
    return findings, suppressed


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    seen: set[Path] = set()
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            seen.update(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            seen.add(p)
    return sorted(seen)


_RULE_ID_RE = re.compile(r"[A-Z]+-[A-Z]\d+")

_TRIVIA_TOKENS = frozenset(
    (
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENDMARKER,
    )
)


def _noqa_comments(source: str) -> list[tuple[int, str | None]]:
    """(line, spec) for every real ``# repro: noqa`` *suppression*.

    Token-based on purpose: noqa text inside a docstring is a STRING
    token and a noqa in a comment-only line (``#: `# repro: noqa` ...``
    documentation) has no code on its line — neither suppresses
    anything, so neither is a candidate for staleness.  ``spec`` is
    ``None`` for a bare ``# repro: noqa``, else the raw ID list text.
    """
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return []
    code_lines: set[int] = set()
    for tok in tokens:
        if tok.type not in _TRIVIA_TOKENS:
            code_lines.update(range(tok.start[0], tok.end[0] + 1))
    out: list[tuple[int, str | None]] = []
    for tok in tokens:
        if tok.type is not tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(tok.string)
        if match is None:
            continue
        if tok.start[0] not in code_lines:
            continue
        out.append((tok.start[0], match.group(1)))
    return out


def unused_suppression_findings(
    sources: dict[str, str],
    used: dict[str, set[tuple[int, str]]],
) -> list[Finding]:
    """REPRO-U001: suppressions that no longer suppress anything.

    ``sources`` maps report path -> file source; ``used`` is the merged
    usage map from every pass that honors noqa (linter + dataflow).
    One finding per stale comment, listing every stale/unknown ID.
    """
    # U001 is registered by the dataflow ruleset (it is a whole-run
    # meta-rule, not a per-file checker); lazy import keeps the
    # linter importable without the dataflow package initialized.
    from repro.analyze.dataflow.ruleset import register_dataflow_rules

    register_dataflow_rules()
    spec = RULES["REPRO-U001"]
    findings: list[Finding] = []
    for path in sorted(sources):
        used_here = used.get(path, set())
        used_lines = {line for line, _ in used_here}
        for line, raw_spec in _noqa_comments(sources[path]):
            if raw_spec is None:
                if line not in used_lines:
                    findings.append(
                        Finding(
                            rule=spec.id,
                            severity=spec.severity_for(path),
                            path=path,
                            line=line,
                            message=(
                                "bare `# repro: noqa` suppresses nothing "
                                "on this line"
                            ),
                            hint=spec.hint,
                        )
                    )
                continue
            ids = _RULE_ID_RE.findall(raw_spec)
            unknown = sorted(i for i in ids if i not in RULES)
            stale = sorted(
                i
                for i in ids
                if i in RULES and (line, i) not in used_here
            )
            problems: list[str] = []
            if not ids:
                problems.append("no valid rule IDs in the suppression list")
            if unknown:
                problems.append(
                    "unknown rule ID(s) " + ", ".join(unknown)
                )
            if stale:
                problems.append(
                    ", ".join(stale)
                    + (" no longer fires" if len(stale) == 1 else " no longer fire")
                    + " on this line"
                )
            if problems:
                findings.append(
                    Finding(
                        rule=spec.id,
                        severity=spec.severity_for(path),
                        path=path,
                        line=line,
                        message="; ".join(problems),
                        hint=spec.hint,
                    )
                )
    findings.sort(key=Finding.sort_key)
    return findings


def lint_paths(
    paths: list[str | Path],
    config: LintConfig | None = None,
    *,
    relative_to: str | Path | None = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths`` (observed, deterministic).

    ``relative_to`` rewrites finding paths relative to a root (posix
    separators) so reports are machine-independent and diffable.
    """
    result = LintResult()
    tracer = get_tracer()
    metrics = get_metrics()
    with tracer.span("analyze.lint"):
        for file_path in iter_python_files(paths):
            report_path = file_path
            if relative_to is not None:
                try:
                    report_path = file_path.resolve().relative_to(
                        Path(relative_to).resolve()
                    )
                except ValueError:
                    report_path = file_path
            try:
                source = file_path.read_text()
            except OSError as exc:
                result.parse_errors.append((str(report_path), str(exc)))
                continue
            posix = Path(report_path).as_posix()
            used: set[tuple[int, str]] = set()
            findings, suppressed = lint_source(source, posix, config, used=used)
            if used:
                result.used_suppressions.setdefault(posix, set()).update(used)
            for finding in findings:
                if finding.rule == "PARSE-ERROR":
                    result.parse_errors.append(
                        (finding.path, finding.message)
                    )
            result.findings.extend(findings)
            result.suppressed += suppressed
            result.files_scanned += 1
        result.findings.sort(key=Finding.sort_key)
        metrics.count("analyze.files", result.files_scanned)
        metrics.count("analyze.findings", len(result.findings))
        metrics.count("analyze.suppressed", result.suppressed)
        for severity in Severity:
            n = sum(
                1 for f in result.findings if f.severity is severity
            )
            if n:
                metrics.count(f"analyze.findings.{severity.value}", n)
    return result

"""The AST lint engine: file walking, noqa suppression, rule dispatch.

Pure stdlib.  The engine parses each file once, hands the module to
every registered rule checker (:mod:`repro.analyze.rules`), and turns
the raw ``(node, message)`` pairs into :class:`Finding` records —
after dropping any occurrence suppressed by an inline
``# repro: noqa:RULE-ID`` comment on the flagged physical line.

The run itself is observable: it executes inside an ``analyze.lint``
span and counts ``analyze.files`` / ``analyze.findings`` /
``analyze.findings.<severity>`` / ``analyze.suppressed`` through
whatever ``repro.obs`` metrics registry is active.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analyze.findings import Finding, Severity
from repro.analyze.rules import CHECKERS, RULES, ModuleContext
from repro.obs import get_metrics, get_tracer

#: ``# repro: noqa`` or ``# repro: noqa:REPRO-D001,REPRO-G002 — why``
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?::\s*([A-Za-z0-9,\- ]+))?")


@dataclass(frozen=True, slots=True)
class LintConfig:
    """What to run and where; empty tuples mean "no restriction"."""

    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()

    def active_rules(self) -> list[str]:
        rules = sorted(RULES)
        if self.select:
            rules = [r for r in rules if r in self.select]
        return [r for r in rules if r not in self.ignore]


@dataclass(slots=True)
class LintResult:
    """Aggregate outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    #: files that failed to parse, as (path, message) — reported as
    #: PARSE-ERROR findings too, so they can never pass silently
    parse_errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def ok(self) -> bool:
        return self.errors == 0


def suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """Per-line noqa map: line number -> suppressed rule IDs (None = all)."""
    out: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        spec = match.group(1)
        if spec is None:
            out[lineno] = None
        else:
            # The justification often follows an em/double dash; only the
            # comma-separated IDs before any dash-word count.
            ids = frozenset(
                token
                for token in (t.strip() for t in spec.split(","))
                if re.fullmatch(r"[A-Z]+-[A-Z]\d+", token)
            )
            out[lineno] = out.get(lineno) or ids
    return out


def _to_location(raw: object) -> tuple[int, int]:
    if isinstance(raw, ast.AST):
        return getattr(raw, "lineno", 0), getattr(raw, "col_offset", 0)
    if isinstance(raw, int):
        return raw, 0
    return 0, 0


def lint_source(
    source: str,
    path: str,
    config: LintConfig | None = None,
) -> tuple[list[Finding], int]:
    """Lint one module's source; returns (findings, suppressed count)."""
    config = config or LintConfig()
    posix = Path(path).as_posix()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        finding = Finding(
            rule="PARSE-ERROR",
            severity=Severity.ERROR,
            path=posix,
            line=exc.lineno or 0,
            message=f"file does not parse: {exc.msg}",
            hint="fix the syntax error; unparseable files are unlinted",
        )
        return [finding], 0
    ctx = ModuleContext(posix, source, tree)
    noqa = suppressions(source)
    findings: list[Finding] = []
    suppressed = 0
    for rule_id in config.active_rules():
        spec = RULES[rule_id]
        if not spec.applies_to(posix):
            continue
        severity = spec.severity_for(posix)
        for raw, message in CHECKERS[rule_id](ctx):
            line, col = _to_location(raw)
            if line in noqa and (noqa[line] is None or rule_id in noqa[line]):
                suppressed += 1
                continue
            findings.append(
                Finding(
                    rule=rule_id,
                    severity=severity,
                    path=posix,
                    line=line,
                    message=message,
                    hint=spec.hint,
                    col=col,
                )
            )
    findings.sort(key=Finding.sort_key)
    return findings, suppressed


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    seen: set[Path] = set()
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            seen.update(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            seen.add(p)
    return sorted(seen)


def lint_paths(
    paths: list[str | Path],
    config: LintConfig | None = None,
    *,
    relative_to: str | Path | None = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths`` (observed, deterministic).

    ``relative_to`` rewrites finding paths relative to a root (posix
    separators) so reports are machine-independent and diffable.
    """
    result = LintResult()
    tracer = get_tracer()
    metrics = get_metrics()
    with tracer.span("analyze.lint"):
        for file_path in iter_python_files(paths):
            report_path = file_path
            if relative_to is not None:
                try:
                    report_path = file_path.resolve().relative_to(
                        Path(relative_to).resolve()
                    )
                except ValueError:
                    report_path = file_path
            try:
                source = file_path.read_text()
            except OSError as exc:
                result.parse_errors.append((str(report_path), str(exc)))
                continue
            findings, suppressed = lint_source(
                source, Path(report_path).as_posix(), config
            )
            for finding in findings:
                if finding.rule == "PARSE-ERROR":
                    result.parse_errors.append(
                        (finding.path, finding.message)
                    )
            result.findings.extend(findings)
            result.suppressed += suppressed
            result.files_scanned += 1
        result.findings.sort(key=Finding.sort_key)
        metrics.count("analyze.files", result.files_scanned)
        metrics.count("analyze.findings", len(result.findings))
        metrics.count("analyze.suppressed", result.suppressed)
        for severity in Severity:
            n = sum(
                1 for f in result.findings if f.severity is severity
            )
            if n:
                metrics.count(f"analyze.findings.{severity.value}", n)
    return result

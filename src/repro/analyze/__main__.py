"""``python -m repro.analyze [paths...]`` — run the AST linter.

Exit status is 1 when any error-severity finding survives suppression
(warnings and infos never fail the run), matching the CI contract.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analyze.findings import render_findings, report_document, write_report
from repro.analyze.linter import LintConfig, lint_paths
from repro.analyze.rules import rule_table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Lint Python sources with the repo-specific rules.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format on stdout",
    )
    parser.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="also write the JSON report to FILE",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default="",
        help="comma-separated rule IDs to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        default="",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--relative-to",
        metavar="DIR",
        default=".",
        help="report paths relative to DIR (default: cwd)",
    )
    args = parser.parse_args(argv)

    config = LintConfig(
        select=tuple(s for s in args.select.split(",") if s),
        ignore=tuple(s for s in args.ignore.split(",") if s),
    )
    result = lint_paths(
        list(args.paths), config, relative_to=Path(args.relative_to)
    )
    document = report_document(
        result.findings,
        tool="repro.analyze",
        files_scanned=result.files_scanned,
        suppressed=result.suppressed,
        rule_table=rule_table(),
    )
    if args.output:
        write_report(args.output, document)
    if args.format == "json":
        import json

        print(json.dumps(document, indent=1))
    else:
        print(render_findings(result.findings, suppressed=result.suppressed))
        print(f"scanned {result.files_scanned} file(s)")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())

"""``python -m repro.analyze [paths...]`` — run the source analyzers.

Runs the per-file AST linter plus the interprocedural dataflow passes
(``--no-dataflow`` to skip them).  Exit status is 1 when any
error-severity finding survives suppression (warnings and infos never
fail the run), matching the CI contract.

Baseline maintenance:

* ``--update-baseline`` regenerates ``ANALYZE_baseline.json``
  atomically and byte-stably — the one supported way to bank analyzer
  changes.
* ``--check-baseline`` runs the two-sided CI gate: new findings AND
  baseline entries that no longer fire both fail, with a diff on
  stdout.
"""

from __future__ import annotations

import argparse
import sys

from repro.analyze.api import (
    BASELINE_NAME,
    analysis_report,
    check_baseline,
    run_source_analysis,
    update_baseline,
)
from repro.analyze.findings import render_findings, write_report
from repro.analyze.linter import LintConfig


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Lint and dataflow-analyze Python sources with the "
        "repo-specific rules.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format on stdout",
    )
    parser.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="also write the JSON report to FILE",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default="",
        help="comma-separated rule IDs to report exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        default="",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--relative-to",
        metavar="DIR",
        default=".",
        help="report paths relative to DIR (default: cwd)",
    )
    parser.add_argument(
        "--no-dataflow",
        action="store_true",
        help="skip the interprocedural dataflow passes",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=BASELINE_NAME,
        help=f"baseline report path (default: {BASELINE_NAME})",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="regenerate the baseline from this run and exit",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="fail unless this run matches the baseline exactly "
        "(two-sided: new findings and stale baseline entries both fail)",
    )
    args = parser.parse_args(argv)

    if args.update_baseline:
        analysis = update_baseline(
            args.baseline, list(args.paths), relative_to=args.relative_to
        )
        print(
            f"wrote {args.baseline}: {len(analysis.findings)} finding(s), "
            f"{analysis.suppressed} suppressed, "
            f"{analysis.files_scanned} file(s)"
        )
        return 0

    if args.check_baseline:
        ok, lines = check_baseline(
            args.baseline, list(args.paths), relative_to=args.relative_to
        )
        for line in lines:
            print(line)
        if ok:
            print(f"baseline OK: {args.baseline}")
        return 0 if ok else 1

    config = LintConfig(
        select=tuple(s for s in args.select.split(",") if s),
        ignore=tuple(s for s in args.ignore.split(",") if s),
    )
    analysis = run_source_analysis(
        list(args.paths),
        lint_config=config,
        dataflow=not args.no_dataflow,
        relative_to=args.relative_to,
    )
    document = analysis_report(analysis)
    if args.output:
        write_report(args.output, document)
    if args.format == "json":
        import json

        print(json.dumps(document, indent=1))
    else:
        print(
            render_findings(analysis.findings, suppressed=analysis.suppressed)
        )
        print(f"scanned {analysis.files_scanned} file(s)")
    return 0 if analysis.ok else 1


if __name__ == "__main__":
    sys.exit(main())

"""``repro.analyze`` — static analysis for code and flow state.

Two engines share one :class:`Finding` currency and one SARIF-lite
report format (``repro.analyze/1``):

* the **AST linter** (:mod:`repro.analyze.rules`,
  :mod:`repro.analyze.linter`): ~10 repo-specific rules over the source
  tree — determinism hazards (``REPRO-D*``), guard hazards
  (``REPRO-G*``), obs naming (``REPRO-O*``), classics (``REPRO-C*``).
  Run it with ``python -m repro.analyze src/``.
* the **flow-invariant checker** (:mod:`repro.analyze.invariants`):
  accounting/connectivity/legality/ILP-shape audits over a loaded
  ``Design``/``GlobalRouter`` state.  Run it with ``crp check``.

A third, interprocedural engine (:mod:`repro.analyze.dataflow`) layers
project-wide determinism taint, cross-process race, and guard-coverage
passes (``REPRO-T*``/``REPRO-X*``/``REPRO-G004+``/``REPRO-U001``) on
top of the linter; :func:`repro.analyze.api.run_source_analysis` runs
everything with one call, and ``crp analyze`` is the unified CLI.
"""

from repro.analyze.api import (
    SourceAnalysis,
    analysis_report,
    check_baseline,
    run_source_analysis,
    update_baseline,
)
from repro.analyze.findings import (
    SCHEMA,
    Finding,
    Severity,
    finding_from_dict,
    finding_to_dict,
    load_report,
    render_findings,
    report_document,
    severity_counts,
    write_report,
)
from repro.analyze.linter import (
    LintConfig,
    LintResult,
    iter_python_files,
    lint_paths,
    lint_source,
    suppressions,
    unused_suppression_findings,
)
from repro.analyze.rules import RULES, Rule, rule, rule_table
from repro.analyze.invariants import (
    FLOW_RULES,
    check_accounting,
    check_connectivity,
    check_flow_state,
    check_guide_coverage,
    check_model,
    check_placement,
)

__all__ = [
    "SCHEMA",
    "SourceAnalysis",
    "analysis_report",
    "check_baseline",
    "run_source_analysis",
    "unused_suppression_findings",
    "update_baseline",
    "Finding",
    "Severity",
    "finding_from_dict",
    "finding_to_dict",
    "load_report",
    "render_findings",
    "report_document",
    "severity_counts",
    "write_report",
    "LintConfig",
    "LintResult",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "suppressions",
    "RULES",
    "Rule",
    "rule",
    "rule_table",
    "FLOW_RULES",
    "check_accounting",
    "check_connectivity",
    "check_flow_state",
    "check_guide_coverage",
    "check_model",
    "check_placement",
]

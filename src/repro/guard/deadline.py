"""Wall-clock budgets for flows, stages, and individual solves.

A :class:`Deadline` is an absolute expiry time.  Scopes nest on a
per-thread stack (``deadline_scope``), and cooperative code calls
:func:`check_deadline` at its loop checkpoints — the maze router every
few hundred expansions, branch-and-bound every few hundred nodes, the
global router once per net.  ``check_deadline`` tests *every* open
scope, so a tight flow-level budget fires even inside a stage whose own
budget still has slack.

Expiry raises :class:`DeadlineExceeded` and counts
``guard.deadline_hits`` (plus ``guard.deadline.<scope-name>``), so
profiles show which budget fired and where.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs import get_metrics


class DeadlineExceeded(RuntimeError):
    """A wall-clock budget ran out at a named checkpoint."""

    def __init__(self, site: str, name: str, budget_s: float) -> None:
        super().__init__(
            f"deadline {name!r} ({budget_s:.3f}s budget) expired at {site}"
        )
        self.site = site
        self.name = name
        self.budget_s = budget_s


class Deadline:
    """An absolute expiry ``budget_s`` seconds after construction."""

    __slots__ = ("name", "budget_s", "_expires")

    def __init__(self, budget_s: float, name: str = "budget") -> None:
        self.name = name
        self.budget_s = float(budget_s)
        self._expires = time.monotonic() + self.budget_s

    @property
    def remaining_s(self) -> float:
        return self._expires - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.remaining_s <= 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline({self.name!r}, remaining={self.remaining_s:.3f}s)"


_local = threading.local()


def _stack() -> list[Deadline]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_deadline() -> Deadline | None:
    """The innermost open deadline scope on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


def remaining_budget() -> float | None:
    """Seconds left on the tightest open scope (``None`` when unbounded)."""
    stack = _stack()
    if not stack:
        return None
    return min(deadline.remaining_s for deadline in stack)


@contextmanager
def deadline_scope(
    budget_s: float | None, name: str = "budget"
) -> Iterator[Deadline | None]:
    """Open a deadline for the ``with`` block; ``None`` budget is a no-op."""
    if budget_s is None:
        yield None
        return
    deadline = Deadline(budget_s, name=name)
    stack = _stack()
    stack.append(deadline)
    try:
        yield deadline
    finally:
        stack.pop()


def check_deadline(site: str) -> None:
    """Raise :class:`DeadlineExceeded` if any open scope has expired."""
    for deadline in _stack():
        if deadline.expired:
            metrics = get_metrics()
            metrics.count("guard.deadline_hits")
            metrics.count(f"guard.deadline.{deadline.name}")
            raise DeadlineExceeded(site, deadline.name, deadline.budget_s)


class DeadlineTicker:
    """Strided :func:`check_deadline` for per-iteration hot loops.

    ``time.monotonic()`` on every node expansion is measurable overhead
    in the maze/A* inner loops; a ticker polls the clock only every
    ``stride`` ticks.  The *first* tick always checks, so a zero-budget
    scope still fails fast before any work is done.
    """

    __slots__ = ("site", "stride", "_left")

    def __init__(self, site: str, stride: int = 64) -> None:
        self.site = site
        self.stride = stride
        self._left = 1

    def tick(self) -> None:
        """Count one loop iteration; every ``stride``-th polls the clock."""
        self._left -= 1
        if self._left <= 0:
            self._left = self.stride
            check_deadline(self.site)

"""Deterministic fault injection at named sites.

Instrumented code calls ``fault_point("<site>")`` at the places the
guard layer must be able to break: ILP backend dispatch (``ilp.scipy``,
``ilp.bnb``, ``ilp.exhaustive``, ``ilp.greedy``), the maze router
(``groute.maze``), flow stages (``flow.GR`` / ``flow.CRP`` /
``flow.BASELINE`` / ``flow.DR``), the CR&P update step
(``crp.update.reroute``), selection (``crp.select``), and the
post-iteration invariant check (``crp.invariants``).

With no plan installed a fault point is one module-global read — safe
to leave in hot paths.  A :class:`FaultPlan` arms sites with one of
three behaviours, each limited to a trigger count:

* ``fail(site)`` — raise :class:`FaultInjected` (or a caller-supplied
  exception),
* ``force(site, value)`` — return ``value`` to the caller, which
  interprets it (e.g. ``"infeasible"`` at an ILP site forces that
  solve status; ``"disconnect"`` at ``groute.maze`` forces a failed
  search),
* ``delay(site, seconds)`` — sleep, so deadline expiry can be staged.

Every trigger counts ``guard.faults_injected`` and is tallied on the
plan (:meth:`FaultPlan.fired`), so tests can prove a recovery path
actually executed rather than was merely installed.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs import get_metrics


class FaultInjected(RuntimeError):
    """The default exception raised by an armed ``fail`` site."""

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at {site}")
        self.site = site


@dataclass(slots=True)
class _Fault:
    kind: str  # "fail" | "force" | "delay"
    times: int  # remaining triggers; -1 means unlimited
    value: object = None  # exception for fail, payload for force, seconds for delay

    @property
    def armed(self) -> bool:
        return self.times != 0

    def consume(self) -> None:
        if self.times > 0:
            self.times -= 1


class FaultPlan:
    """An ordered set of faults, armed per site."""

    def __init__(self) -> None:
        self._sites: dict[str, list[_Fault]] = {}
        self._fired: dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------- arming

    def fail(
        self, site: str, exc: BaseException | None = None, times: int = 1
    ) -> "FaultPlan":
        """Arm ``site`` to raise ``exc`` (default :class:`FaultInjected`)."""
        self._add(site, _Fault(kind="fail", times=times, value=exc))
        return self

    def force(self, site: str, value: object, times: int = 1) -> "FaultPlan":
        """Arm ``site`` to hand ``value`` back to the instrumented code."""
        self._add(site, _Fault(kind="force", times=times, value=value))
        return self

    def delay(self, site: str, seconds: float, times: int = 1) -> "FaultPlan":
        """Arm ``site`` to sleep ``seconds`` before continuing."""
        self._add(site, _Fault(kind="delay", times=times, value=seconds))
        return self

    def _add(self, site: str, fault: _Fault) -> None:
        with self._lock:
            self._sites.setdefault(site, []).append(fault)

    # ----------------------------------------------------------- queries

    def fired(self, site: str | None = None) -> int:
        """Trigger count for ``site`` (or total across all sites)."""
        with self._lock:
            if site is not None:
                return self._fired.get(site, 0)
            return sum(self._fired.values())

    # ---------------------------------------------------------- firing

    def trigger(self, site: str) -> object | None:
        """Fire the next armed fault at ``site``; called by fault_point."""
        with self._lock:
            faults = self._sites.get(site)
            fault = next((f for f in faults if f.armed), None) if faults else None
            if fault is None:
                return None
            fault.consume()
            self._fired[site] = self._fired.get(site, 0) + 1
        metrics = get_metrics()
        metrics.count("guard.faults_injected")
        metrics.count(f"guard.fault.{site}")
        if fault.kind == "delay":
            time.sleep(float(fault.value))  # type: ignore[arg-type]
            return None
        if fault.kind == "fail":
            exc = fault.value
            if exc is None:
                exc = FaultInjected(site)
            elif isinstance(exc, type):
                exc = exc(f"injected fault at {site}")
            raise exc  # type: ignore[misc]
        return fault.value


_active_plan: FaultPlan | None = None
_install_lock = threading.Lock()


def install_faults(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` process-wide (or clear with ``None``); returns prior."""
    global _active_plan
    with _install_lock:
        previous = _active_plan
        _active_plan = plan
    return previous


@contextmanager
def use_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the scope of the ``with`` block."""
    previous = install_faults(plan)
    try:
        yield plan
    finally:
        install_faults(previous)


def fault_point(site: str) -> object | None:
    """The injection hook: returns a forced value, raises, sleeps, or no-ops."""
    plan = _active_plan
    if plan is None:
        return None
    return plan.trigger(site)

"""``repro.guard`` — fault-tolerant execution for the whole flow.

Four pillars, wired through ``ilp``/``groute``/``core``/``flow``/``cli``:

* **Deadlines** (:mod:`repro.guard.deadline`): nested wall-clock budgets
  (per flow, per stage, per ILP solve) checked cooperatively at loop
  checkpoints; expiry raises :class:`DeadlineExceeded` and counts
  ``guard.deadline_hits``.
* **Fallback ladder** (:mod:`repro.guard.ladder`): ``ilp.solve`` retries
  scipy -> branch-and-bound -> exhaustive -> greedy on backend
  exceptions, infeasible/error verdicts, or deadline expiry, counting
  ``guard.fallbacks``.
* **Transactions** (:mod:`repro.guard.transaction`): every CR&P
  iteration snapshots cell positions + dirty-net routes, verifies
  legality / demand-accounting / cost-monotonicity invariants, and
  rolls back on violation, counting ``guard.rollbacks``.
* **Fault injection** (:mod:`repro.guard.faults`): deterministic
  exceptions, forced statuses, and delays at named sites, so the test
  suite proves every recovery path actually runs.

Stage-level isolation lives in ``repro.flow.pipeline``: a dead stage
becomes a :class:`FailureReport` on the ``FlowResult`` instead of a
crash, and the CLI exits non-zero.

Import-order note: submodules are imported leaves-first (report,
deadline, faults before ladder) because instrumented packages like
``repro.ilp`` import the earlier leaves back while ``ladder`` is still
loading.
"""

from repro.guard.report import FailureReport
from repro.guard.deadline import (
    Deadline,
    DeadlineExceeded,
    DeadlineTicker,
    check_deadline,
    current_deadline,
    deadline_scope,
    remaining_budget,
)
from repro.guard.faults import (
    FaultInjected,
    FaultPlan,
    fault_point,
    install_faults,
    use_faults,
)
from repro.guard.ladder import run_ladder
from repro.guard.transaction import (
    GuardPolicy,
    IterationTransaction,
    iteration_violations,
)

__all__ = [
    "FailureReport",
    "Deadline",
    "DeadlineExceeded",
    "DeadlineTicker",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "remaining_budget",
    "FaultInjected",
    "FaultPlan",
    "fault_point",
    "install_faults",
    "use_faults",
    "run_ladder",
    "GuardPolicy",
    "IterationTransaction",
    "iteration_violations",
]

"""Transactional CR&P iterations: snapshot, verify, roll back.

CR&P's core promise is monotone improvement — an iteration must never
leave the design worse or inconsistent.  Before the Update-Database
step, :meth:`IterationTransaction.capture` snapshots everything the
step may touch: the positions of every cell any chosen candidate moves,
the committed routes of every net those cells drive, and the move
history.  After the step, :func:`iteration_violations` checks three
invariants:

1. the placement is still legal (:func:`repro.db.check_legality`),
2. GCell demand accounting matches the committed routes
   (:meth:`GlobalRouter.accounting_errors`),
3. total route cost has not increased beyond
   ``GuardPolicy.cost_tolerance``.

Any violation — or any exception raised mid-update — triggers
:meth:`IterationTransaction.rollback`, which restores positions,
routes, and history exactly, and counts ``guard.rollbacks``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.guard.faults import fault_point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.db import Design
    from repro.groute import GlobalRouter


@dataclass(slots=True)
class GuardPolicy:
    """Knobs of the CR&P iteration guard."""

    #: snapshot + verify + roll back each iteration's update step
    transactional: bool = True
    #: relative total-route-cost increase tolerated before rolling back
    cost_tolerance: float = 0.02


class IterationTransaction:
    """A restorable snapshot of the state one Update-Database step mutates."""

    __slots__ = ("design", "router", "cells", "routes", "moved_history")

    def __init__(self, design: "Design", router: "GlobalRouter") -> None:
        self.design = design
        self.router = router
        self.cells: dict[str, tuple[int, int, object]] = {}
        self.routes: dict[str, object | None] = {}
        self.moved_history: set[str] = set()

    @classmethod
    def capture(
        cls, design: "Design", router: "GlobalRouter", chosen: dict
    ) -> "IterationTransaction":
        """Snapshot ahead of ``apply_moves(design, router, chosen)``."""
        txn = cls(design, router)
        touched: set[str] = set()
        for candidate in chosen.values():
            if candidate.is_current:
                continue
            touched.add(candidate.cell)
            touched.update(candidate.conflict_moves)
        for name in sorted(touched):
            cell = design.cells[name]
            txn.cells[name] = (cell.x, cell.y, cell.orient)
        for net_name in router.dirty_nets_for_cells(sorted(touched)):
            txn.routes[net_name] = router.copy_route(net_name)
        txn.moved_history = set(design.moved_history)
        return txn

    def rollback(self) -> None:
        """Restore every snapshotted cell, route, and the move history."""
        for name, (x, y, orient) in self.cells.items():
            cell = self.design.cells[name]
            if (cell.x, cell.y, cell.orient) != (x, y, orient):
                self.design.move_cell(name, x, y, orient)
        for net_name, route in self.routes.items():
            self.router.restore_route(net_name, route)
        self.design.moved_history = set(self.moved_history)
        # restore_route already notifies the cost field edge-by-edge;
        # the full invalidation guards against callers that mutated
        # usage arrays behind the graph's back before rolling back.
        # It also drops the router's NetCostCache values wholesale, so
        # the post-rollback guard/convergence totals re-price against
        # restored state (membership stays valid: restore_route replays
        # through the same rip-up/commit notifications).
        self.router.invalidate_cost_fields()


def iteration_violations(
    design: "Design",
    router: "GlobalRouter",
    pre_cost: float,
    cost_tolerance: float,
) -> list[str]:
    """Post-iteration invariant check; empty list means the step stands.

    The ``crp.invariants`` fault site lets tests force a violation (and
    thereby prove the rollback path) without perturbing real state.
    """
    violations: list[str] = []
    forced = fault_point("crp.invariants")
    if forced is not None:
        violations.append(str(forced))
    from repro.db import check_legality

    report = check_legality(design)
    if not report.is_legal:
        violations.append(f"illegal placement: {report.summary()}")
    violations.extend(router.accounting_errors())
    post_cost = sum(router.net_cost(name) for name in design.nets)
    if post_cost > pre_cost * (1.0 + cost_tolerance) + 1e-9:
        violations.append(
            f"route cost regressed {pre_cost:.3f} -> {post_cost:.3f} "
            f"(tolerance {cost_tolerance:.1%})"
        )
    return violations

"""Structured failure capture for stage-level error isolation.

When a flow stage dies, ``run_flow`` converts the exception into a
:class:`FailureReport` on the :class:`~repro.flow.pipeline.FlowResult`
instead of crashing the whole run, so callers still get the partial
metrics and the stages that did complete.
"""

from __future__ import annotations

import traceback as _traceback
from dataclasses import dataclass


@dataclass(slots=True)
class FailureReport:
    """What went wrong in one flow stage."""

    stage: str
    error_type: str
    message: str
    traceback: str = ""
    #: metrics snapshot taken when the failure was recorded
    metrics: dict[str, dict[str, object]] | None = None

    @classmethod
    def from_exception(
        cls,
        stage: str,
        exc: BaseException,
        metrics: dict[str, dict[str, object]] | None = None,
    ) -> "FailureReport":
        return cls(
            stage=stage,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(
                _traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
            metrics=metrics,
        )

    def summary(self) -> str:
        return f"{self.stage}: {self.error_type}: {self.message}"

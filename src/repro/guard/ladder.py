"""The ILP fallback ladder: scipy -> bnb -> exhaustive -> greedy.

``repro.ilp.solve(backend="auto")`` runs solves through this ladder.
Each rung is attempted in order and abandoned — counting
``guard.fallbacks`` plus ``guard.fallback.<rung>`` — when it raises,
returns an infeasible/error status, or the ambient deadline expires.
Deadline expiry skips the remaining exact rungs and goes straight to
the greedy heuristic, whose runtime is linear in the model, so a solve
under a blown budget still returns *a* feasible answer when one exists.

The greedy rung returns ``SolveStatus.FEASIBLE`` (valid but not proven
optimal); exact rungs return ``OPTIMAL``/``INFEASIBLE`` as before.  An
``INFEASIBLE`` verdict is cross-checked on the next exact rung rather
than trusted immediately, because a buggy (or fault-injected) backend
claiming infeasibility would otherwise silently discard work.
"""

from __future__ import annotations

from typing import Callable

from repro.guard.deadline import DeadlineExceeded, check_deadline
from repro.ilp.solution import Solution, SolveStatus
from repro.obs import get_metrics

#: exact rungs, in preference order; greedy is the always-last resort
EXACT_RUNGS = ("scipy", "bnb", "exhaustive")

Dispatch = Callable[[object, str], Solution]


def _applicable_exact_rungs(model) -> list[str]:
    from repro.ilp.exhaustive import MAX_EXHAUSTIVE_VARS

    rungs = ["scipy", "bnb"]
    if model.all_binary and model.num_variables <= MAX_EXHAUSTIVE_VARS:
        rungs.append("exhaustive")
    return rungs


def _record_fallback(rung: str, reason: str) -> None:
    metrics = get_metrics()
    metrics.count("guard.fallbacks")
    metrics.count(f"guard.fallback.{rung}")
    metrics.count(f"guard.fallback_reason.{reason}")


def run_ladder(model, dispatch: Dispatch) -> Solution:
    """Solve ``model`` via the fallback ladder; never raises a backend error.

    ``dispatch`` is :func:`repro.ilp.solver._dispatch` (injected to keep
    the import graph acyclic).  Returns the first usable solution; when
    every rung fails, returns the last non-ok verdict (so a consistent
    ``INFEASIBLE`` survives) or an ``ERROR`` solution.
    """
    last: Solution | None = None
    for rung in _applicable_exact_rungs(model):
        try:
            check_deadline(f"ilp.{rung}")
            solution = dispatch(model, rung)
        except DeadlineExceeded:
            _record_fallback(rung, "deadline")
            break
        except Exception as exc:  # noqa: BLE001 — any backend fault falls through
            _record_fallback(rung, type(exc).__name__)
            continue
        if solution.status is SolveStatus.OPTIMAL:
            return solution
        _record_fallback(rung, solution.status.value)
        if solution.status is SolveStatus.INFEASIBLE:
            if last is not None and last.status is SolveStatus.INFEASIBLE:
                # Two independent exact backends agree: truly infeasible.
                return solution
            last = solution
        elif last is None:
            last = solution

    if model.all_binary:
        try:
            greedy = dispatch(model, "greedy")
        except Exception as exc:  # repro: noqa:REPRO-G002 — greedy is the post-deadline last resort; its death must not mask `last`
            _record_fallback("greedy", type(exc).__name__)
            greedy = None
        if greedy is not None and greedy.ok:
            # A feasible greedy answer overrules a single unconfirmed
            # INFEASIBLE verdict; with no verdict at all it is the answer.
            return greedy
    if last is not None:
        return last
    return Solution(status=SolveStatus.ERROR, backend="ladder")

"""The Fontana et al. [18] comparator.

The published algorithm moves *every* cell toward the median of its
connected nets' terminals (no priority ordering) and selects movements
with an ILP whose cost model counts only route length and detours — no
congestion term.  The CR&P paper credits exactly those two differences
(congestion-blind cost, no prioritization) for [18] losing on congested
designs, so this reimplementation keeps both characteristics:

* every movable cell is a candidate, processed in database order;
* the movement target is the free slot nearest the cell's median;
* estimation uses ``CostParams(use_penalty=False)`` (length + vias only);
* an ILP picks the move subset, excluding pairs that share a net.

Runtime scales with the full cell count (vs. CR&P's capped critical
fraction), reproducing the Fig. 2 runtime gap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.geom import Orientation
from repro.db import Design
from repro.grid import CostField, CostModel, CostParams
from repro.groute import GlobalRouter
from repro.ilp import IlpModel, Sense, solve
from repro.legalizer import WindowLegalizer
from repro.legalizer.median import median_position
from repro.core.candidates import MoveCandidate
from repro.core.estimate import estimate_candidate_cost
from repro.core.select import _add_conflict_constraints
from repro.core.update import apply_moves


class BaselineTimeout(RuntimeError):
    """Raised when the baseline exceeds its wall-clock budget.

    The original [18] binary failed outright on ispd18_test10; this
    reproduction bounds the run instead and reports the failure the same
    way the paper's Table III does.
    """


@dataclass(slots=True)
class FontanaResult:
    """Outcome of a baseline run."""

    moved_cells: int = 0
    rerouted_nets: int = 0
    runtime_s: float = 0.0
    iterations: int = 0
    failed: bool = False


class FontanaBaseline:
    """Move-to-median with ILP selection (no congestion awareness)."""

    def __init__(
        self,
        design: Design,
        router: GlobalRouter,
        backend: str = "auto",
        time_budget_s: float | None = None,
    ) -> None:
        self.design = design
        self.router = router
        self.backend = backend
        self.time_budget_s = time_budget_s
        # Congestion-blind pricing: same graph, penalty disabled.  The
        # matching flat CostField rides along so a field-equipped router
        # keeps its fast path (and never prices with penalty-on maps).
        flat_params = CostParams(
            wire_weight=router.cost.params.wire_weight,
            via_weight=router.cost.params.via_weight,
            use_penalty=False,
        )
        self._flat_cost = CostModel(router.graph, flat_params)
        self._flat_field = (
            CostField(router.graph, flat_params)
            if router.field is not None
            else None
        )

    def run(self, iterations: int = 1) -> FontanaResult:
        """Run the move-to-median optimization."""
        result = FontanaResult()
        start = time.perf_counter()
        try:
            for _ in range(iterations):
                moved, rerouted = self._run_iteration(start)
                result.moved_cells += moved
                result.rerouted_nets += rerouted
                result.iterations += 1
        except BaselineTimeout:
            result.failed = True
        result.runtime_s = time.perf_counter() - start
        return result

    def _check_budget(self, start: float) -> None:
        if (
            self.time_budget_s is not None
            and time.perf_counter() - start > self.time_budget_s
        ):
            raise BaselineTimeout(
                f"baseline exceeded {self.time_budget_s:.0f}s budget"
            )

    def _run_iteration(self, start: float) -> tuple[int, int]:
        design = self.design
        legalizer = WindowLegalizer(
            design,
            n_sites=16,
            n_rows=3,
            max_cells=1,  # [18] does not displace neighbours
            max_targets=1,
            backend=self.backend,
        )
        candidates: dict[str, list[MoveCandidate]] = {}
        # No prioritization: database order, every movable cell.
        for name, cell in design.cells.items():
            if cell.fixed:
                continue
            self._check_budget(start)
            options = [
                MoveCandidate(
                    cell=name, position=(cell.x, cell.y, cell.orient)
                )
            ]
            options.extend(
                MoveCandidate(
                    cell=name,
                    position=legalized.position,
                    conflict_moves=dict(legalized.conflict_moves),
                    displacement=legalized.displacement,
                )
                for legalized in self._median_candidates(legalizer, name)
            )
            if len(options) > 1:
                candidates[name] = options

        swap_router_cost = self.router.cost
        self.router.cost = self._flat_cost
        try:
            with self.router.pattern3d.using(self._flat_cost, self._flat_field):
                for name, options in candidates.items():
                    self._check_budget(start)
                    for candidate in options:
                        candidate.route_cost = estimate_candidate_cost(
                            design, self.router, candidate
                        )
        finally:
            self.router.cost = swap_router_cost

        chosen = self._select(candidates)
        update = apply_moves(design, self.router, chosen)
        return len(update.moved_cells), len(update.rerouted_nets)

    def _median_candidates(self, legalizer: WindowLegalizer, name: str):
        """The legalized slot nearest the cell's median, if any."""
        design = self.design
        cell = design.cells[name]
        median = median_position(design, name)
        # Only bother when the median is meaningfully away from the cell.
        site = design.tech.default_site()
        if (
            abs(median.x - cell.x) < site.width
            and abs(median.y - cell.y) < site.height
        ):
            return []
        # Temporarily recenter the window on the median by moving the
        # query point: the window legalizer centers on the cell, so use
        # a wider window when the median is far.
        span = max(
            legalizer.n_sites,
            2 * abs(median.x - cell.x) // site.width + 2,
        )
        rows = max(
            legalizer.n_rows,
            2 * abs(median.y - cell.y) // site.height + 1,
        )
        wide = WindowLegalizer(
            design,
            n_sites=min(span, 60),
            n_rows=min(rows, 9),
            max_cells=1,
            max_targets=1,
            backend=legalizer.backend,
        )
        return wide.run(name)

    def _select(
        self, candidates: dict[str, list[MoveCandidate]]
    ) -> dict[str, MoveCandidate]:
        """ILP over all cells: minimize flat route cost, one option each;
        cells sharing a net (or overlapping footprints) never both move."""
        design = self.design
        model = IlpModel("fontana-select")
        var_of: dict[tuple[str, int], int] = {}
        for cell_name, options in candidates.items():
            indices = []
            for i, candidate in enumerate(options):
                cost = candidate.route_cost
                if cost == float("inf"):
                    cost = 1e9
                var = model.add_binary(f"y[{cell_name}][{i}]", cost=cost)
                var_of[(cell_name, i)] = var
                indices.append(var)
            model.add_exactly_one(indices, name=f"one[{cell_name}]")

        # Net-sharing exclusion: moving both endpoints of a net at once
        # would invalidate both estimates ([18] enforces the same).
        names = list(candidates)
        name_set = set(names)
        for cell_name in names:
            for other in design.connected_cells(cell_name):
                if other in name_set and other > cell_name:
                    for i in range(1, len(candidates[cell_name])):
                        for j in range(1, len(candidates[other])):
                            model.add_constraint(
                                [
                                    (var_of[(cell_name, i)], 1.0),
                                    (var_of[(other, j)], 1.0),
                                ],
                                Sense.LE,
                                1.0,
                            )
        _add_conflict_constraints(design, candidates, model, var_of)

        solution = solve(model, backend=self.backend)
        chosen: dict[str, MoveCandidate] = {}
        for cell_name, options in candidates.items():
            chosen[cell_name] = options[0]
        if solution.ok:
            for (cell_name, i), var in var_of.items():
                if solution.values[model.variables[var].name] > 0.5:
                    chosen[cell_name] = candidates[cell_name][i]
        return chosen

"""Reimplementation of the state of the art CR&P compares against:
Fontana et al., "ILP-based global routing optimization with cell
movements" (ISVLSI 2021), reference [18] of the paper."""

from repro.baseline.fontana import FontanaBaseline, FontanaResult

__all__ = ["FontanaBaseline", "FontanaResult"]

"""Lightweight, dependency-free visualization of placements and routing.

ASCII renderings for terminals and a minimal SVG writer for reports:
congestion heat maps over the GCell grid, per-layer usage summaries,
and die plots with cells, blockages, and net routes.
"""

from repro.viz.ascii_art import congestion_heatmap, layer_usage_table, placement_map
from repro.viz.svg import svg_die_plot

__all__ = [
    "congestion_heatmap",
    "layer_usage_table",
    "placement_map",
    "svg_die_plot",
]

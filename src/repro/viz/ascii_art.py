"""ASCII renderings for quick flow inspection in a terminal."""

from __future__ import annotations

import numpy as np

from repro.db import Design
from repro.groute import GlobalRouter

#: utilization thresholds and their glyphs, dense to sparse
_LEVELS = ((0.9, "#"), (0.7, "+"), (0.4, "."), (0.0, " "))


def congestion_heatmap(router: GlobalRouter) -> str:
    """Render the GCell congestion map (north up, one char per GCell)."""
    cmap = router.graph.congestion_map()
    lines = []
    for gy in reversed(range(cmap.shape[1])):
        row = []
        for gx in range(cmap.shape[0]):
            value = cmap[gx, gy]
            for threshold, glyph in _LEVELS:
                if value > threshold or threshold <= 0.0:
                    row.append(glyph)
                    break
        lines.append("|" + "".join(row) + "|")
    legend = "legend: '#'>90%  '+'>70%  '.'>40%  ' '<=40% utilization"
    return "\n".join(lines + [legend])


def layer_usage_table(router: GlobalRouter) -> str:
    """Per-layer wire usage, capacity, and via counts."""
    graph = router.graph
    lines = [
        f"{'layer':<8}{'dir':>4}{'used':>10}{'capacity':>10}{'util%':>8}{'vias':>8}"
    ]
    for layer in graph.tech.layers:
        used = float(graph.wire_usage[layer.index].sum())
        cap = float(graph.wire_capacity[layer.index].sum())
        vias = (
            int(graph.via_usage[layer.index].sum())
            if layer.index < graph.num_layers - 1
            else 0
        )
        util = 100.0 * used / cap if cap else 0.0
        direction = "H" if layer.is_horizontal else "V"
        lines.append(
            f"{layer.name:<8}{direction:>4}{used:>10.0f}{cap:>10.0f}"
            f"{util:>8.1f}{vias:>8}"
        )
    return "\n".join(lines)


def placement_map(design: Design, width: int = 64) -> str:
    """Coarse die map: cell density per character cell, blockages as 'X'."""
    die = design.die
    aspect = die.height / max(1, die.width)
    height = max(4, int(width * aspect * 0.5))  # chars are ~2x tall
    density = np.zeros((width, height), dtype=np.float64)
    cell_w = die.width / width
    cell_h = die.height / height
    for cell in design.cells.values():
        gx = min(width - 1, int((cell.x - die.lx) / cell_w))
        gy = min(height - 1, int((cell.y - die.ly) / cell_h))
        density[gx, gy] += cell.area
    tile_area = cell_w * cell_h
    blocked = np.zeros((width, height), dtype=bool)
    for blockage in design.placement_blockages():
        x0 = max(0, int((blockage.rect.lx - die.lx) / cell_w))
        x1 = min(width - 1, int((blockage.rect.ux - die.lx) / cell_w))
        y0 = max(0, int((blockage.rect.ly - die.ly) / cell_h))
        y1 = min(height - 1, int((blockage.rect.uy - die.ly) / cell_h))
        blocked[x0 : x1 + 1, y0 : y1 + 1] = True
    lines = []
    for gy in reversed(range(height)):
        row = []
        for gx in range(width):
            if blocked[gx, gy]:
                row.append("X")
                continue
            util = density[gx, gy] / tile_area
            for threshold, glyph in _LEVELS:
                if util > threshold or threshold <= 0.0:
                    row.append(glyph)
                    break
        lines.append("|" + "".join(row) + "|")
    return "\n".join(lines)

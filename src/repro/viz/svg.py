"""A minimal SVG die plot (no external dependencies)."""

from __future__ import annotations

from repro.db import Design
from repro.groute import GlobalRouter

_LAYER_COLORS = (
    "#4363d8", "#e6194b", "#3cb44b", "#f58231", "#911eb4",
    "#46f0f0", "#f032e6", "#bcf60c", "#fabebe",
)


def svg_die_plot(
    design: Design,
    router: GlobalRouter | None = None,
    nets: list[str] | None = None,
    width_px: int = 800,
) -> str:
    """Render the die, cells, blockages, and (optionally) net routes.

    Returns an SVG document string.  With a router, the GCell routes of
    ``nets`` (default: none) are drawn color-coded by layer.
    """
    die = design.die
    scale = width_px / max(1, die.width)
    height_px = max(1, int(die.height * scale))

    def sx(x: int) -> float:
        return (x - die.lx) * scale

    def sy(y: int) -> float:
        # SVG y grows downward; flip so north is up.
        return height_px - (y - die.ly) * scale

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" '
        f'height="{height_px}" viewBox="0 0 {width_px} {height_px}">',
        f'<rect x="0" y="0" width="{width_px}" height="{height_px}" '
        'fill="#fafafa" stroke="#333"/>',
    ]
    for row in design.rows:
        parts.append(
            f'<rect x="{sx(row.origin_x):.1f}" y="{sy(row.origin_y + row.height):.1f}" '
            f'width="{row.end_x * scale - row.origin_x * scale:.1f}" '
            f'height="{row.height * scale:.1f}" fill="none" '
            'stroke="#e0e0e0" stroke-width="0.5"/>'
        )
    for cell in design.cells.values():
        box = cell.bbox()
        fill = "#607d8b" if cell.fixed else "#b0bec5"
        parts.append(
            f'<rect x="{sx(box.lx):.1f}" y="{sy(box.uy):.1f}" '
            f'width="{box.width * scale:.1f}" height="{box.height * scale:.1f}" '
            f'fill="{fill}" fill-opacity="0.6" stroke="#78909c" stroke-width="0.3"/>'
        )
    for blockage in design.placement_blockages():
        box = blockage.rect
        parts.append(
            f'<rect x="{sx(box.lx):.1f}" y="{sy(box.uy):.1f}" '
            f'width="{box.width * scale:.1f}" height="{box.height * scale:.1f}" '
            'fill="#ef5350" fill-opacity="0.4" stroke="#c62828"/>'
        )
    if router is not None and nets:
        for net_name in nets:
            route = router.routes.get(net_name)
            if route is None:
                continue
            for edge in sorted(route.edges):
                (l0, x0, y0), (_, x1, y1) = edge.endpoints(router.graph)
                a = router.grid.center_of(x0, y0)
                b = router.grid.center_of(x1, y1)
                color = _LAYER_COLORS[l0 % len(_LAYER_COLORS)]
                parts.append(
                    f'<line x1="{sx(a.x):.1f}" y1="{sy(a.y):.1f}" '
                    f'x2="{sx(b.x):.1f}" y2="{sy(b.y):.1f}" '
                    f'stroke="{color}" stroke-width="1.2"/>'
                )
    parts.append("</svg>")
    return "\n".join(parts)

"""ISPD-2018-style quality evaluation (the contest's official metrics)."""

from repro.evalmetrics.scorer import EvalWeights, QualityScore, evaluate

__all__ = ["EvalWeights", "QualityScore", "evaluate"]

"""Quality scoring with the ISPD-2018 contest weights.

The contest evaluator charges 0.5 per unit of wire (measured in M2-pitch
units), 2 per via cut, and large fixed penalties per DRV; the paper
leans on exactly this 4x wire/via asymmetry to explain why CR&P's
improvement shows up mostly in via count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.droute.router import DetailedResult
from repro.tech import Technology


@dataclass(slots=True)
class EvalWeights:
    """ISPD-2018 metric weights."""

    wire: float = 0.5
    via: float = 2.0
    short: float = 500.0
    min_area: float = 500.0
    open_net: float = 1500.0


@dataclass(slots=True)
class QualityScore:
    """One detailed-routing solution's quality numbers."""

    design: str
    wirelength_dbu: int
    wirelength_units: float
    vias: int
    drvs: int
    drv_breakdown: dict[str, int] = field(default_factory=dict)
    score: float = 0.0

    def improvement_over(self, baseline: "QualityScore") -> dict[str, float]:
        """Percentage improvements versus a baseline (positive = better)."""

        def pct(new: float, old: float) -> float:
            if old == 0:
                return 0.0
            return 100.0 * (old - new) / old

        return {
            "wirelength": pct(self.wirelength_dbu, baseline.wirelength_dbu),
            "vias": pct(self.vias, baseline.vias),
            "drvs": self.drvs - baseline.drvs,
            "score": pct(self.score, baseline.score),
        }


def evaluate(
    design_name: str,
    tech: Technology,
    result: DetailedResult,
    weights: EvalWeights | None = None,
) -> QualityScore:
    """Score a detailed-routing result with the contest weights."""
    w = weights or EvalWeights()
    pitch_layer = min(1, tech.num_layers - 1)
    pitch = max(1, tech.layers[pitch_layer].pitch)
    wl_units = result.wirelength_dbu / pitch
    breakdown = result.drv_counts()
    score = (
        w.wire * wl_units
        + w.via * result.vias
        + w.short * breakdown.get("short", 0)
        + w.min_area * breakdown.get("min_area", 0)
        + w.open_net * breakdown.get("open", 0)
    )
    return QualityScore(
        design=design_name,
        wirelength_dbu=result.wirelength_dbu,
        wirelength_units=wl_units,
        vias=result.vias,
        drvs=result.num_drvs,
        drv_breakdown=breakdown,
        score=score,
    )

"""Backend dispatch for ILP solves, instrumented with ``repro.obs``.

Every solve runs inside an ``ilp.solve`` span and records the
``ilp.solves`` counter plus ``ilp.solve_ms`` / ``ilp.variables``
histograms, so profiles show how much of a CR&P stage (selection ILP,
window-legalizer ILPs inside GCP) is solver time.  A solve that raises
still counts — as ``ilp.status.error`` — so profiles never undercount
failed solves.

``backend="auto"`` (and its alias ``"ladder"``) routes through the
:mod:`repro.guard.ladder` fallback ladder: scipy -> branch-and-bound ->
exhaustive -> greedy, advancing on backend exceptions, infeasible/error
verdicts, or deadline expiry.  Named backends dispatch directly and
re-raise their failures.  ``budget_s`` opens a per-solve deadline scope
around whichever path runs.

Each backend dispatch passes through a ``fault_point`` site
(``ilp.scipy`` etc.), so tests can force exceptions or statuses there.
"""

from __future__ import annotations

import time

from repro.ilp.model import IlpModel
from repro.ilp.solution import Solution, SolveStatus
from repro.obs import get_metrics, get_tracer

_STATUS_BY_VALUE = {status.value: status for status in SolveStatus}


def solve(
    model: IlpModel, backend: str = "auto", budget_s: float | None = None
) -> Solution:
    """Solve ``model``.

    ``backend`` is one of ``auto``/``ladder`` (the guard fallback
    ladder, HiGHS first), ``scipy``, ``bnb``, ``exhaustive``, or
    ``greedy``.  ``budget_s`` bounds this solve's wall clock.
    """
    from repro.guard.deadline import deadline_scope
    from repro.guard.ladder import run_ladder

    metrics = get_metrics()
    with get_tracer().span(
        "ilp.solve", backend=backend, variables=model.num_variables
    ):
        t0 = time.perf_counter()
        try:
            with deadline_scope(budget_s, name="ilp.solve"):
                if backend in ("auto", "ladder"):
                    solution = run_ladder(model, _dispatch)
                else:
                    solution = _dispatch(model, backend)
        except Exception:
            metrics.count("ilp.solves")
            metrics.count("ilp.status.error")
            raise
        elapsed_ms = (time.perf_counter() - t0) * 1000.0
    metrics.count("ilp.solves")
    metrics.count(f"ilp.status.{solution.status.value}")
    metrics.observe("ilp.solve_ms", elapsed_ms)
    metrics.observe("ilp.variables", model.num_variables)
    return solution


def _forced_status(site: str, backend: str) -> Solution | None:
    """Fault-injection hook: a forced status name becomes that Solution."""
    from repro.guard.faults import fault_point

    forced = fault_point(site)
    if forced is None:
        return None
    status = _STATUS_BY_VALUE.get(str(forced))
    if status is None:
        raise ValueError(f"fault site {site}: unknown forced status {forced!r}")
    return Solution(status=status, backend=backend)


def _dispatch(model: IlpModel, backend: str) -> Solution:
    if backend == "scipy":
        forced = _forced_status("ilp.scipy", "scipy")
        if forced is not None:
            return forced
        from repro.ilp.scipy_backend import solve_scipy

        return solve_scipy(model)
    if backend == "bnb":
        forced = _forced_status("ilp.bnb", "bnb")
        if forced is not None:
            return forced
        from repro.ilp.bnb import solve_bnb

        return solve_bnb(model)
    if backend == "exhaustive":
        forced = _forced_status("ilp.exhaustive", "exhaustive")
        if forced is not None:
            return forced
        from repro.ilp.exhaustive import solve_exhaustive

        return solve_exhaustive(model)
    if backend == "greedy":
        forced = _forced_status("ilp.greedy", "greedy")
        if forced is not None:
            return forced
        from repro.ilp.greedy import solve_greedy

        return solve_greedy(model)
    raise ValueError(f"unknown ILP backend {backend!r}")

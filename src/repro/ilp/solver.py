"""Backend dispatch for ILP solves, instrumented with ``repro.obs``.

Every solve runs inside an ``ilp.solve`` span and records the
``ilp.solves`` counter plus ``ilp.solve_ms`` / ``ilp.variables``
histograms, so profiles show how much of a CR&P stage (selection ILP,
window-legalizer ILPs inside GCP) is solver time.
"""

from __future__ import annotations

import time

from repro.ilp.model import IlpModel
from repro.ilp.solution import Solution, SolveStatus
from repro.obs import get_metrics, get_tracer


def solve(model: IlpModel, backend: str = "auto") -> Solution:
    """Solve ``model`` exactly.

    ``backend`` is one of ``auto`` (HiGHS if importable, else
    branch-and-bound), ``scipy``, ``bnb``, or ``exhaustive``.
    """
    with get_tracer().span(
        "ilp.solve", backend=backend, variables=model.num_variables
    ):
        t0 = time.perf_counter()
        solution = _dispatch(model, backend)
        elapsed_ms = (time.perf_counter() - t0) * 1000.0
    metrics = get_metrics()
    metrics.count("ilp.solves")
    metrics.count(f"ilp.status.{solution.status.value}")
    metrics.observe("ilp.solve_ms", elapsed_ms)
    metrics.observe("ilp.variables", model.num_variables)
    return solution


def _dispatch(model: IlpModel, backend: str) -> Solution:
    if backend == "auto":
        try:
            from repro.ilp.scipy_backend import solve_scipy
        except ImportError:  # pragma: no cover - depends on scipy build
            from repro.ilp.bnb import solve_bnb

            return solve_bnb(model)
        return solve_scipy(model)
    if backend == "scipy":
        from repro.ilp.scipy_backend import solve_scipy

        return solve_scipy(model)
    if backend == "bnb":
        from repro.ilp.bnb import solve_bnb

        return solve_bnb(model)
    if backend == "exhaustive":
        from repro.ilp.exhaustive import solve_exhaustive

        return solve_exhaustive(model)
    raise ValueError(f"unknown ILP backend {backend!r}")

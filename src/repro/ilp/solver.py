"""Backend dispatch for ILP solves."""

from __future__ import annotations

from repro.ilp.model import IlpModel
from repro.ilp.solution import Solution, SolveStatus


def solve(model: IlpModel, backend: str = "auto") -> Solution:
    """Solve ``model`` exactly.

    ``backend`` is one of ``auto`` (HiGHS if importable, else
    branch-and-bound), ``scipy``, ``bnb``, or ``exhaustive``.
    """
    if backend == "auto":
        try:
            from repro.ilp.scipy_backend import solve_scipy
        except ImportError:  # pragma: no cover - depends on scipy build
            from repro.ilp.bnb import solve_bnb

            return solve_bnb(model)
        return solve_scipy(model)
    if backend == "scipy":
        from repro.ilp.scipy_backend import solve_scipy

        return solve_scipy(model)
    if backend == "bnb":
        from repro.ilp.bnb import solve_bnb

        return solve_bnb(model)
    if backend == "exhaustive":
        from repro.ilp.exhaustive import solve_exhaustive

        return solve_exhaustive(model)
    raise ValueError(f"unknown ILP backend {backend!r}")

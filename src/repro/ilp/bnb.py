"""Pure-Python branch-and-bound over LP relaxations.

A fallback exact MILP solver that only needs ``scipy.optimize.linprog``
(or nothing at all for models whose LP relaxation is integral).  Used
when :func:`scipy.optimize.milp` is unavailable and as an independent
cross-check of the HiGHS backend in the test suite.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import linprog

from repro.guard.deadline import check_deadline
from repro.ilp.model import IlpModel, Sense
from repro.ilp.solution import Solution, SolveStatus


def solve_bnb(model: IlpModel, max_nodes: int = 20000) -> Solution:
    """Best-first branch-and-bound with LP-relaxation bounding."""
    n = model.num_variables
    if n == 0:
        return Solution(status=SolveStatus.OPTIMAL, objective=0.0, backend="bnb")

    cost = np.array([v.cost for v in model.variables])
    a_ub, b_ub, a_eq, b_eq = _matrices(model)

    incumbent: np.ndarray | None = None
    incumbent_obj = float("inf")
    # stack of (extra lower bounds, extra upper bounds)
    base_lb = np.array([v.lower for v in model.variables])
    base_ub = np.array([v.upper for v in model.variables])
    stack: list[tuple[np.ndarray, np.ndarray]] = [(base_lb, base_ub)]
    nodes = 0

    while stack and nodes < max_nodes:
        if nodes % 128 == 0:
            check_deadline("ilp.bnb")
        lb, ub = stack.pop()
        nodes += 1
        relax = _solve_lp(cost, a_ub, b_ub, a_eq, b_eq, lb, ub)
        if relax is None:
            continue
        obj, x = relax
        if obj >= incumbent_obj - 1e-9:
            continue
        frac_index = _most_fractional(model, x)
        if frac_index is None:
            if obj < incumbent_obj:
                incumbent_obj = obj
                incumbent = x.copy()
            continue
        floor_val = math.floor(x[frac_index] + 1e-9)
        up_lb = lb.copy()
        up_lb[frac_index] = floor_val + 1
        down_ub = ub.copy()
        down_ub[frac_index] = floor_val
        # Explore the branch nearer the fractional value first.
        if x[frac_index] - floor_val > 0.5:
            stack.append((lb, down_ub))
            stack.append((up_lb, ub))
        else:
            stack.append((up_lb, ub))
            stack.append((lb, down_ub))

    if incumbent is None:
        return Solution(status=SolveStatus.INFEASIBLE, backend="bnb")
    values = {
        v.name: (round(incumbent[v.index]) if v.integral else float(incumbent[v.index]))
        for v in model.variables
    }
    return Solution(
        status=SolveStatus.OPTIMAL,
        objective=float(incumbent_obj),
        values=values,
        backend="bnb",
    )


def _matrices(model: IlpModel):
    n = model.num_variables
    rows_ub: list[np.ndarray] = []
    b_ub: list[float] = []
    rows_eq: list[np.ndarray] = []
    b_eq: list[float] = []
    for c in model.constraints:
        row = np.zeros(n)
        for t in c.terms:
            row[t.var] += t.coeff
        if c.sense is Sense.LE:
            rows_ub.append(row)
            b_ub.append(c.rhs)
        elif c.sense is Sense.GE:
            rows_ub.append(-row)
            b_ub.append(-c.rhs)
        else:
            rows_eq.append(row)
            b_eq.append(c.rhs)
    a_ub = np.vstack(rows_ub) if rows_ub else None
    a_eq = np.vstack(rows_eq) if rows_eq else None
    return (
        a_ub,
        np.array(b_ub) if rows_ub else None,
        a_eq,
        np.array(b_eq) if rows_eq else None,
    )


def _solve_lp(cost, a_ub, b_ub, a_eq, b_eq, lb, ub):
    if np.any(lb > ub + 1e-12):
        return None
    result = linprog(
        c=cost,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=list(zip(lb, ub)),
        method="highs",
    )
    if not result.success:
        return None
    return float(result.fun), np.asarray(result.x)


def _most_fractional(model: IlpModel, x: np.ndarray) -> int | None:
    best = None
    best_frac = 1e-6
    for v in model.variables:
        if not v.integral:
            continue
        frac = abs(x[v.index] - round(x[v.index]))
        if frac > best_frac:
            best_frac = frac
            best = v.index
    return best

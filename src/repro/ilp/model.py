"""ILP model construction."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Sense(Enum):
    """Constraint comparison senses."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(slots=True)
class Variable:
    """A decision variable (binary unless bounds say otherwise)."""

    name: str
    index: int
    cost: float = 0.0
    lower: float = 0.0
    upper: float = 1.0
    integral: bool = True


@dataclass(frozen=True, slots=True)
class LinTerm:
    """One ``coeff * variable`` term."""

    var: int
    coeff: float


@dataclass(slots=True)
class Constraint:
    """A linear constraint ``sum(terms) sense rhs``."""

    terms: list[LinTerm]
    sense: Sense
    rhs: float
    name: str = ""


class IlpModel:
    """A minimization ILP.

    Build with :meth:`add_binary` / :meth:`add_variable` and
    :meth:`add_constraint`, then pass to :func:`repro.ilp.solve`.
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self._by_name: dict[str, int] = {}

    def add_binary(self, name: str, cost: float = 0.0) -> int:
        """Add a 0/1 variable; returns its index."""
        return self.add_variable(name, cost=cost, lower=0.0, upper=1.0, integral=True)

    def add_variable(
        self,
        name: str,
        cost: float = 0.0,
        lower: float = 0.0,
        upper: float = 1.0,
        integral: bool = True,
    ) -> int:
        if name in self._by_name:
            raise ValueError(f"duplicate variable {name}")
        index = len(self.variables)
        self.variables.append(
            Variable(
                name=name,
                index=index,
                cost=cost,
                lower=lower,
                upper=upper,
                integral=integral,
            )
        )
        self._by_name[name] = index
        return index

    def var_index(self, name: str) -> int:
        return self._by_name[name]

    def add_constraint(
        self,
        terms: list[tuple[int, float]],
        sense: Sense,
        rhs: float,
        name: str = "",
    ) -> None:
        """Add ``sum(coeff * var) sense rhs``; terms are (index, coeff)."""
        for var, _ in terms:
            if not 0 <= var < len(self.variables):
                raise ValueError(f"constraint {name!r}: unknown variable {var}")
        self.constraints.append(
            Constraint(
                terms=[LinTerm(var, coeff) for var, coeff in terms],
                sense=sense,
                rhs=rhs,
                name=name,
            )
        )

    def add_exactly_one(self, var_indices: list[int], name: str = "") -> None:
        """Convenience for the paper's selection constraints (Eqs. 2-3)."""
        self.add_constraint(
            [(v, 1.0) for v in var_indices], Sense.EQ, 1.0, name=name
        )

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def all_binary(self) -> bool:
        return all(
            # bounds are assigned from these exact literals in
            # add_binary/add_variable, never computed
            v.integral and v.lower == 0.0 and v.upper == 1.0  # repro: noqa:REPRO-D003
            for v in self.variables
        )

    def objective_value(self, values: list[float]) -> float:
        return sum(v.cost * values[v.index] for v in self.variables)

    def is_feasible(self, values: list[float], tol: float = 1e-6) -> bool:
        """Check a full assignment against bounds and constraints."""
        for v in self.variables:
            x = values[v.index]
            if x < v.lower - tol or x > v.upper + tol:
                return False
            if v.integral and abs(x - round(x)) > tol:
                return False
        for c in self.constraints:
            lhs = sum(t.coeff * values[t.var] for t in c.terms)
            if c.sense is Sense.LE and lhs > c.rhs + tol:
                return False
            if c.sense is Sense.GE and lhs < c.rhs - tol:
                return False
            if c.sense is Sense.EQ and abs(lhs - c.rhs) > tol:
                return False
        return True

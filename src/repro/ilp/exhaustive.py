"""Exhaustive enumeration backend for tiny all-binary models."""

from __future__ import annotations

from itertools import product

from repro.guard.deadline import check_deadline
from repro.ilp.model import IlpModel
from repro.ilp.solution import Solution, SolveStatus

MAX_EXHAUSTIVE_VARS = 22


def solve_exhaustive(model: IlpModel) -> Solution:
    """Enumerate all 0/1 assignments; exact but exponential.

    Only valid for all-binary models with at most
    :data:`MAX_EXHAUSTIVE_VARS` variables.
    """
    if not model.all_binary:
        raise ValueError("exhaustive backend requires an all-binary model")
    n = model.num_variables
    if n > MAX_EXHAUSTIVE_VARS:
        raise ValueError(f"exhaustive backend limited to {MAX_EXHAUSTIVE_VARS} vars")
    best: list[float] | None = None
    best_obj = float("inf")
    for i, assignment in enumerate(product((0.0, 1.0), repeat=n)):
        if i % 4096 == 0:
            check_deadline("ilp.exhaustive")
        values = list(assignment)
        if not model.is_feasible(values):
            continue
        obj = model.objective_value(values)
        if obj < best_obj:
            best_obj = obj
            best = values
    if best is None:
        return Solution(status=SolveStatus.INFEASIBLE, backend="exhaustive")
    return Solution(
        status=SolveStatus.OPTIMAL,
        objective=best_obj,
        values={v.name: best[v.index] for v in model.variables},
        backend="exhaustive",
    )

"""ILP solve results."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class SolveStatus(Enum):
    """Outcome of an ILP solve."""

    OPTIMAL = "optimal"
    #: valid assignment without an optimality proof (greedy ladder rung)
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    ERROR = "error"


@dataclass(slots=True)
class Solution:
    """Values and objective of a solved model."""

    status: SolveStatus
    objective: float = 0.0
    values: dict[str, float] = field(default_factory=dict)
    backend: str = ""

    @property
    def ok(self) -> bool:
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)

    def value(self, name: str) -> float:
        return self.values[name]

    def chosen(self, prefix: str = "") -> list[str]:
        """Names of binary variables set to 1 (optionally filtered)."""
        return [
            name
            for name, val in self.values.items()
            if val > 0.5 and name.startswith(prefix)
        ]

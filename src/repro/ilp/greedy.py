"""Greedy heuristic backend — the fallback ladder's last resort.

Only handles all-binary models (which every model in this repo is: the
selection ILP and the window-legalizer ILPs).  Two passes:

1. satisfy each EQ/GE constraint by raising its cheapest still-settable
   variable, respecting every LE/EQ upper bound already in force;
2. raise any remaining negative-cost variable that stays feasible.

Runtime is O(variables * constraints) — no search, no LP — so it
terminates fast even when the exact backends just blew a deadline.  The
result is validated with :meth:`IlpModel.is_feasible` and returned as
``SolveStatus.FEASIBLE`` (valid, not proven optimal); an assignment the
greedy rules cannot legalize yields ``SolveStatus.ERROR``.
"""

from __future__ import annotations

from repro.ilp.model import IlpModel, Sense
from repro.ilp.solution import Solution, SolveStatus

_TOL = 1e-9


def solve_greedy(model: IlpModel) -> Solution:
    """Construct a feasible (not necessarily optimal) 0/1 assignment."""
    if not model.all_binary:
        raise ValueError("greedy backend requires an all-binary model")
    n = model.num_variables
    if n == 0:
        return Solution(status=SolveStatus.OPTIMAL, objective=0.0, backend="greedy")

    values = [0.0] * n
    # var index -> constraints that cap it from above (LE, or EQ at rhs)
    capping: dict[int, list[int]] = {v.index: [] for v in model.variables}
    for ci, c in enumerate(model.constraints):
        if c.sense in (Sense.LE, Sense.EQ):
            for t in c.terms:
                if t.coeff > 0:
                    capping[t.var].append(ci)

    def lhs_of(ci: int) -> float:
        return sum(t.coeff * values[t.var] for t in model.constraints[ci].terms)

    def can_set(var: int) -> bool:
        for ci in capping[var]:
            c = model.constraints[ci]
            coeff = sum(t.coeff for t in c.terms if t.var == var)
            if lhs_of(ci) + coeff > c.rhs + _TOL:
                return False
        return True

    # Pass 1: meet every lower-bounding constraint, cheapest variable first.
    for ci, c in enumerate(model.constraints):
        if c.sense is Sense.LE:
            continue
        while lhs_of(ci) < c.rhs - _TOL:
            settable = [
                t.var
                for t in c.terms
                if t.coeff > 0 and values[t.var] < 0.5 and can_set(t.var)
            ]
            if not settable:
                break  # cannot legalize; is_feasible will reject below
            best = min(settable, key=lambda v: model.variables[v].cost)
            values[best] = 1.0

    # Pass 2: take any remaining profitable variable that stays feasible.
    profitable = sorted(
        (v for v in model.variables if v.cost < 0 and values[v.index] < 0.5),
        key=lambda v: v.cost,
    )
    for v in profitable:
        if can_set(v.index):
            values[v.index] = 1.0

    if not model.is_feasible(values):
        return Solution(status=SolveStatus.ERROR, backend="greedy")
    return Solution(
        status=SolveStatus.FEASIBLE,
        objective=model.objective_value(values),
        values={v.name: values[v.index] for v in model.variables},
        backend="greedy",
    )

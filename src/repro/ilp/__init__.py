"""Integer linear programming substrate (replaces CPLEX).

A small modeling layer plus three interchangeable exact backends:

* ``scipy`` — :func:`scipy.optimize.milp` (HiGHS branch-and-cut),
* ``bnb``   — a pure-Python branch-and-bound over LP relaxations,
* ``exhaustive`` — enumeration for tiny all-binary models.

``solve`` picks automatically: HiGHS when available, otherwise B&B.
"""

from repro.ilp.model import Constraint, IlpModel, LinTerm, Sense, Variable
from repro.ilp.solution import Solution, SolveStatus
from repro.ilp.solver import solve

__all__ = [
    "IlpModel",
    "Variable",
    "Constraint",
    "LinTerm",
    "Sense",
    "Solution",
    "SolveStatus",
    "solve",
]

"""Integer linear programming substrate (replaces CPLEX).

A small modeling layer plus four interchangeable backends:

* ``scipy`` — :func:`scipy.optimize.milp` (HiGHS branch-and-cut),
* ``bnb``   — a pure-Python branch-and-bound over LP relaxations,
* ``exhaustive`` — enumeration for tiny all-binary models,
* ``greedy`` — a feasibility heuristic (no optimality proof).

``solve(backend="auto")`` runs the :mod:`repro.guard.ladder` fallback
ladder across them, so a backend exception, a bogus infeasible verdict,
or a blown deadline degrades the solve instead of killing the flow.
"""

from repro.ilp.model import Constraint, IlpModel, LinTerm, Sense, Variable
from repro.ilp.solution import Solution, SolveStatus
from repro.ilp.solver import solve

__all__ = [
    "IlpModel",
    "Variable",
    "Constraint",
    "LinTerm",
    "Sense",
    "Solution",
    "SolveStatus",
    "solve",
]

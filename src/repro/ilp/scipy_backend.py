"""HiGHS backend via :func:`scipy.optimize.milp`."""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import csr_matrix

from repro.ilp.model import IlpModel, Sense
from repro.ilp.solution import Solution, SolveStatus


def solve_scipy(model: IlpModel) -> Solution:
    """Solve ``model`` exactly with HiGHS."""
    n = model.num_variables
    if n == 0:
        return Solution(status=SolveStatus.OPTIMAL, objective=0.0, backend="scipy")
    cost = np.array([v.cost for v in model.variables])
    integrality = np.array(
        [1 if v.integral else 0 for v in model.variables], dtype=np.int8
    )
    bounds = Bounds(
        lb=np.array([v.lower for v in model.variables]),
        ub=np.array([v.upper for v in model.variables]),
    )
    constraints = []
    if model.constraints:
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        lb = np.full(model.num_constraints, -np.inf)
        ub = np.full(model.num_constraints, np.inf)
        for i, c in enumerate(model.constraints):
            for t in c.terms:
                rows.append(i)
                cols.append(t.var)
                data.append(t.coeff)
            if c.sense is Sense.LE:
                ub[i] = c.rhs
            elif c.sense is Sense.GE:
                lb[i] = c.rhs
            else:
                lb[i] = c.rhs
                ub[i] = c.rhs
        matrix = csr_matrix(
            (data, (rows, cols)), shape=(model.num_constraints, n)
        )
        constraints = [LinearConstraint(matrix, lb, ub)]
    result = milp(
        c=cost,
        constraints=constraints,
        integrality=integrality,
        bounds=bounds,
    )
    if result.status == 2:
        return Solution(status=SolveStatus.INFEASIBLE, backend="scipy")
    if not result.success or result.x is None:
        return Solution(status=SolveStatus.ERROR, backend="scipy")
    values = {
        v.name: (round(x) if v.integral else float(x))
        for v, x in zip(model.variables, result.x)
    }
    return Solution(
        status=SolveStatus.OPTIMAL,
        objective=float(result.fun),
        values=values,
        backend="scipy",
    )

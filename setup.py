"""Legacy setup shim.

The environment this repo is developed in has no ``wheel`` package and no
network access, so PEP 660 editable installs fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on modern toolchains with wheel available) work.
"""

from setuptools import setup

setup()

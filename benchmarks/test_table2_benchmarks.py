"""Table II — benchmark statistics of the (synthetic) ISPD-2018 suite.

Regenerates the paper's Table II for our scaled designs: circuit name,
net count, cell count, and technology node, alongside the published
numbers the generator targets (scaled 1/100).
"""

from __future__ import annotations

from conftest import write_table


def test_table2_statistics(benchmark, designs):
    from repro.benchgen import make_design, suite_table

    rows = [r for r in suite_table() if r["circuit"] in designs]

    def generate_all():
        return {name: make_design(name) for name in designs}

    generated = benchmark.pedantic(generate_all, rounds=1, iterations=1)

    lines = [
        "Table II: ISPD-2018-shaped synthetic benchmark statistics",
        f"{'Circuit':<16}{'#nets':>8}{'#cells':>8}{'node':>7}"
        f"{'util':>7}{'rows':>6}   paper(#nets/#cells)",
        "-" * 72,
    ]
    for row in rows:
        design = generated[row["circuit"]]
        stats = design.stats()
        lines.append(
            f"{row['circuit']:<16}{stats['nets']:>8}{stats['cells']:>8}"
            f"{row['tech_node']:>7}{stats['utilization']:>7.2f}"
            f"{stats['rows']:>6}   {row['paper_nets']}/{row['paper_cells']}"
        )
    write_table("table2", lines)

    # Shape assertions: counts match the spec and scale with the paper.
    for row in rows:
        stats = generated[row["circuit"]].stats()
        assert stats["nets"] == row["nets"]
        assert stats["cells"] == row["cells"]

"""Shared infrastructure for the paper-reproduction benchmarks.

Every table and figure of the paper's evaluation section is regenerated
by one module in this directory.  Flow runs are expensive, so results
are computed once per (design, variant) and cached for the whole
session; Table III, Fig. 2, and Fig. 3 all read the same runs.

Environment knobs:

* ``CRP_BENCH_DESIGNS`` — comma-separated design names (default: the
  full ispd18_test1..10 suite).
* ``CRP_BENCH_QUICK=1`` — restrict to three representative designs
  (small / low-congestion / congested) for a fast pass.
* ``CRP_BENCH_K`` — iteration count for the "k=10" column (default 10).
* ``CRP_BASELINE_BUDGET_S`` — wall-clock budget for the [18] baseline
  before it is reported as Failed (default 600 s; the original binary
  failed outright on ispd18_test10).

Each benchmark also writes its formatted table to ``bench_results/`` so
EXPERIMENTS.md can reference the exact output.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"

QUICK_DESIGNS = ["ispd18_test1", "ispd18_test2", "ispd18_test5"]


def bench_designs() -> list[str]:
    from repro.benchgen import SUITE

    env = os.environ.get("CRP_BENCH_DESIGNS")
    if env:
        return [name.strip() for name in env.split(",") if name.strip()]
    if os.environ.get("CRP_BENCH_QUICK"):
        return list(QUICK_DESIGNS)
    return list(SUITE)


def bench_k10() -> int:
    return int(os.environ.get("CRP_BENCH_K", "10"))


def baseline_budget_s() -> float:
    return float(os.environ.get("CRP_BASELINE_BUDGET_S", "600"))


VARIANTS = ("baseline", "fontana", "crp1", "crp10")

_CACHE: dict[tuple[str, str], object] = {}


def flow_result(design_name: str, variant: str):
    """Run (or fetch) one flow variant on one design."""
    from repro.benchgen import make_design
    from repro.core import CrpConfig
    from repro.flow import run_flow

    key = (design_name, variant)
    if key in _CACHE:
        return _CACHE[key]
    design = make_design(design_name)
    if variant == "baseline":
        result = run_flow(design, mode="baseline")
    elif variant == "fontana":
        result = run_flow(
            design, mode="fontana", baseline_budget_s=baseline_budget_s()
        )
    elif variant == "crp1":
        result = run_flow(
            design, mode="crp", crp_iterations=1, config=CrpConfig(seed=0)
        )
    elif variant == "crp10":
        result = run_flow(
            design,
            mode="crp",
            crp_iterations=bench_k10(),
            config=CrpConfig(seed=0),
        )
    else:
        raise ValueError(f"unknown variant {variant!r}")
    _CACHE[key] = result
    return result


def write_table(name: str, lines: list[str]) -> None:
    """Print a benchmark table and persist it under bench_results/."""
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def designs() -> list[str]:
    return bench_designs()

"""Ablation — the logistic congestion penalty in the movement cost.

The paper credits CR&P's edge over [18] partly to its congestion-aware
cost (Eq. 10's logistic penalty): candidates in congested regions look
expensive, so cells move *away* from hot-spots.  This ablation runs
CR&P with the penalty enabled vs disabled on a congested design and
compares the resulting GR-level overflow and via counts.
"""

from __future__ import annotations

from conftest import write_table

DESIGN = "ispd18_test5"  # congested: blockage + high utilization


def _run(use_penalty: bool):
    from repro.benchgen import make_design
    from repro.core import CrpConfig
    from repro.flow import run_flow

    return run_flow(
        make_design(DESIGN),
        mode="crp",
        crp_iterations=3,
        config=CrpConfig(seed=0, use_penalty=use_penalty),
        skip_detailed=True,
    )


def test_ablation_congestion_penalty(benchmark):
    def run_both():
        return _run(True), _run(False)

    with_penalty, without_penalty = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    lines = [
        f"Ablation: logistic congestion penalty (CR&P k=3 on {DESIGN})",
        f"{'variant':<16}{'GR wl (dbu)':>14}{'GR vias':>9}{'overflow':>10}",
        "-" * 49,
        f"{'penalty on':<16}{with_penalty.gr_wirelength_dbu:>14}"
        f"{with_penalty.gr_vias:>9}{with_penalty.gr_overflow:>10.1f}",
        f"{'penalty off':<16}{without_penalty.gr_wirelength_dbu:>14}"
        f"{without_penalty.gr_vias:>9}{without_penalty.gr_overflow:>10.1f}",
    ]
    write_table("ablation_penalty", lines)

    # Shape: the congestion-aware variant must not leave more overflow.
    assert with_penalty.gr_overflow <= without_penalty.gr_overflow + 1.0

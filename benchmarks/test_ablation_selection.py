"""Ablation — critical-cell prioritization (Algorithm 1's sort).

The paper's second claimed advantage over [18]: cells are selected by
the routed cost of their nets rather than treated uniformly.  Disabling
``prioritize`` keeps the same gamma fraction and history damping but
picks cells in arbitrary (database) order, like [18] does.
"""

from __future__ import annotations

from conftest import write_table

DESIGN = "ispd18_test2"


def _run(prioritize: bool):
    from repro.benchgen import make_design
    from repro.core import CrpConfig
    from repro.flow import run_flow

    return run_flow(
        make_design(DESIGN),
        mode="crp",
        crp_iterations=3,
        config=CrpConfig(seed=0, prioritize=prioritize),
        skip_detailed=True,
    )


def test_ablation_prioritization(benchmark):
    def run_both():
        return _run(True), _run(False)

    prioritized, arbitrary = benchmark.pedantic(run_both, rounds=1, iterations=1)

    def score(result):
        return 0.5 * result.gr_wirelength_dbu / 200 + 2.0 * result.gr_vias

    lines = [
        f"Ablation: critical-cell prioritization (CR&P k=3 on {DESIGN})",
        f"{'variant':<18}{'GR wl (dbu)':>14}{'GR vias':>9}{'score':>12}",
        "-" * 53,
        f"{'cost-prioritized':<18}{prioritized.gr_wirelength_dbu:>14}"
        f"{prioritized.gr_vias:>9}{score(prioritized):>12.1f}",
        f"{'arbitrary order':<18}{arbitrary.gr_wirelength_dbu:>14}"
        f"{arbitrary.gr_vias:>9}{score(arbitrary):>12.1f}",
    ]
    write_table("ablation_selection", lines)

    # Shape: prioritization should not lose by more than noise.
    assert score(prioritized) <= score(arbitrary) * 1.05

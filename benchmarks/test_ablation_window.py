"""Ablation — legalizer window size (the paper's tuned 20x5 window).

The paper reports |sites| = 20, |rows| = 5, |cells| <= 3 as an
experimentally-tuned trade-off between runtime and candidate quality.
This sweep runs one CR&P iteration with smaller and larger windows and
reports movement-stage runtime and achieved GR quality.
"""

from __future__ import annotations

from conftest import write_table

DESIGN = "ispd18_test2"

WINDOWS = [
    (8, 3, 2),
    (20, 5, 3),  # paper default
    (32, 7, 4),
]


def _run(n_sites: int, n_rows: int, max_cells: int):
    from repro.benchgen import make_design
    from repro.core import CrpConfig
    from repro.flow import run_flow

    return run_flow(
        make_design(DESIGN),
        mode="crp",
        crp_iterations=1,
        config=CrpConfig(
            seed=0, n_sites=n_sites, n_rows=n_rows, max_cells=max_cells
        ),
        skip_detailed=True,
    )


def test_ablation_window_sweep(benchmark):
    def run_all():
        return {w: _run(*w) for w in WINDOWS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        f"Ablation: legalizer window sweep (CR&P k=1 on {DESIGN})",
        f"{'sites x rows x cells':<22}{'CRP time (s)':>13}{'GR wl (dbu)':>14}{'GR vias':>9}",
        "-" * 58,
    ]
    for window, result in results.items():
        label = f"{window[0]} x {window[1]} x {window[2]}"
        lines.append(
            f"{label:<22}{result.runtime.get('CRP', 0.0):>13.1f}"
            f"{result.gr_wirelength_dbu:>14}{result.gr_vias:>9}"
        )
    write_table("ablation_window", lines)

    # Shape: a bigger window costs more movement-stage time.
    times = [results[w].runtime.get("CRP", 0.0) for w in WINDOWS]
    assert times[0] <= times[2] * 1.2

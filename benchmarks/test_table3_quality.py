"""Table III — detailed-routing quality: wirelength, DRVs, via count.

For every suite design, runs the four flows the paper compares —
CUGR+TritonRoute baseline (ours: GR+DR), the state of the art [18]
(ours: the Fontana reimplementation), CR&P k=1, and CR&P k=10 — and
prints the same columns: baseline absolute numbers plus percentage
improvement for each contender.

Expected shape (not absolute numbers): via improvement exceeds
wirelength improvement, k=10 >= k=1 on average, no systematic DRV
increase, and [18] is only competitive on the least congested designs
(test2/test3 analogues).
"""

from __future__ import annotations

from conftest import VARIANTS, flow_result, write_table


def _pct(new: float, old: float) -> float:
    if old == 0:
        return 0.0
    return 100.0 * (old - new) / old


def test_table3_quality(benchmark, designs):
    def run_all():
        return {
            (name, variant): flow_result(name, variant)
            for name in designs
            for variant in VARIANTS
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "Table III: detailed-routing wirelength / DRVs / vias",
        "(improvements are % vs the GR+DR baseline; positive = better)",
        f"{'Benchmark':<15}{'BL wl':>11}{'[18] wl%':>9}{'k=1 wl%':>9}{'k=10 wl%':>9}"
        f"{'BL drv':>7}{'[18]':>6}{'k=1':>5}{'k=10':>5}"
        f"{'BL vias':>9}{'[18] v%':>9}{'k=1 v%':>8}{'k=10 v%':>8}",
        "-" * 110,
    ]
    avg = {v: {"wl": [], "vias": []} for v in VARIANTS}
    shape_rows = []
    for name in designs:
        base = results[(name, "baseline")].quality
        row = [f"{name:<15}{base.wirelength_dbu:>11}"]
        per_variant = {}
        for variant in ("fontana", "crp1", "crp10"):
            res = results[(name, variant)]
            if res.failed or res.quality is None:
                per_variant[variant] = None
            else:
                per_variant[variant] = res.quality
        for variant in ("fontana", "crp1", "crp10"):
            q = per_variant[variant]
            if q is None:
                row.append(f"{'Failed':>9}")
            else:
                wl_pct = _pct(q.wirelength_dbu, base.wirelength_dbu)
                avg[variant]["wl"].append(wl_pct)
                row.append(f"{wl_pct:>9.2f}")
        row.append(f"{base.drvs:>7}")
        for variant in ("fontana", "crp1", "crp10"):
            q = per_variant[variant]
            row.append(f"{'--':>6}" if q is None else f"{q.drvs:>6}")
        row.append(f"{base.vias:>9}")
        for variant in ("fontana", "crp1", "crp10"):
            q = per_variant[variant]
            if q is None:
                row.append(f"{'Failed':>9}")
            else:
                via_pct = _pct(q.vias, base.vias)
                avg[variant]["vias"].append(via_pct)
                row.append(f"{via_pct:>8.2f}")
        lines.append("".join(row))
        shape_rows.append((name, base, per_variant))

    lines.append("-" * 110)
    means = {}
    for variant in ("fontana", "crp1", "crp10"):
        wl = avg[variant]["wl"]
        vias = avg[variant]["vias"]
        means[variant] = (
            sum(wl) / len(wl) if wl else 0.0,
            sum(vias) / len(vias) if vias else 0.0,
        )
    lines.append(
        f"{'Avg':<15}{'':>11}"
        f"{means['fontana'][0]:>9.2f}{means['crp1'][0]:>9.2f}{means['crp10'][0]:>9.2f}"
        f"{'':>7}{'':>6}{'':>5}{'':>5}{'':>9}"
        f"{means['fontana'][1]:>9.2f}{means['crp1'][1]:>8.2f}{means['crp10'][1]:>8.2f}"
    )
    lines.append("")
    lines.append(
        "paper averages: [18] wl -0.74% / vias +0.74%; "
        "CR&P k=1 wl +0.04% / vias +0.80%; k=10 wl +0.14% / vias +2.06%"
    )
    write_table("table3", lines)

    # ---- shape assertions -------------------------------------------
    # CR&P k=10 must improve vias on average, and more than wirelength.
    assert means["crp10"][1] > 0.0, "CR&P k=10 should reduce vias on average"
    assert means["crp10"][1] >= means["crp10"][0] - 1e-9, (
        "via improvement should dominate wirelength improvement"
    )
    # k=10 should be at least as good as k=1 on vias (on average).
    assert means["crp10"][1] >= means["crp1"][1] - 0.5
    # No systematic DRV explosion: average DRV delta <= +15% of baseline.
    deltas = []
    for name, base, per_variant in shape_rows:
        for variant in ("crp1", "crp10"):
            q = per_variant[variant]
            if q is not None:
                deltas.append(q.drvs - base.drvs)
    if deltas:
        base_total = sum(b.drvs for _, b, _ in shape_rows)
        assert sum(deltas) / max(1, len(deltas)) <= max(
            2.0, 0.15 * base_total / max(1, len(shape_rows))
        ), "CR&P must not systematically add DRVs"

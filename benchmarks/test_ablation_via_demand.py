"""Ablation — the via term of the demand model (Eq. 9's beta * delta_e).

CUGR-style demand adds a probabilistic via-crowding estimate to each
edge.  Setting beta = 0 removes it; with it enabled, wire edges near
via-dense GCells look more expensive, so routes spread away from those
regions (at the price of extra vias elsewhere) and overflow must not
increase.  Compared at the GR level on a congested design.
"""

from __future__ import annotations

from conftest import write_table

DESIGN = "ispd18_test5"


def _route(beta: float):
    from repro.benchgen import make_design
    from repro.groute import GlobalRouter

    design = make_design(DESIGN)
    router = GlobalRouter(design, beta=beta)
    router.route_all()
    return router


def test_ablation_via_demand(benchmark):
    def run_both():
        return _route(1.5), _route(0.0)

    with_beta, without_beta = benchmark.pedantic(run_both, rounds=1, iterations=1)

    lines = [
        f"Ablation: via demand term beta*delta_e (global routing, {DESIGN})",
        f"{'variant':<14}{'wl (dbu)':>12}{'vias':>8}{'overflow':>10}",
        "-" * 44,
        f"{'beta=1.5':<14}{with_beta.total_wirelength_dbu():>12}"
        f"{with_beta.total_vias():>8}{with_beta.total_overflow():>10.1f}",
        f"{'beta=0':<14}{without_beta.total_wirelength_dbu():>12}"
        f"{without_beta.total_vias():>8}{without_beta.total_overflow():>10.1f}",
    ]
    write_table("ablation_via_demand", lines)

    # Both must produce complete routings; the beta term should not
    # increase overflow materially.
    assert with_beta.total_overflow() <= without_beta.total_overflow() + 20.0

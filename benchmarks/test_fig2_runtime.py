"""Fig. 2 — runtime comparison: baseline, [18], CR&P k=1, CR&P k=10.

Prints the wall-clock of each flow variant per design.  Expected shape:
CR&P k=1 adds a small margin over the baseline; k=10 grows roughly
linearly in k (not exponentially); the [18] baseline processes every
cell and is the slowest movement stage (it failed outright on the
test10 analogue in the paper; here it is reported Failed when it blows
its wall-clock budget).
"""

from __future__ import annotations

from conftest import VARIANTS, flow_result, write_table


def test_fig2_runtime(benchmark, designs):
    def run_all():
        return {
            (name, variant): flow_result(name, variant)
            for name in designs
            for variant in VARIANTS
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "Fig. 2: flow runtime (seconds) per design and variant",
        f"{'Benchmark':<15}{'Baseline':>10}{'[18]':>10}{'CRP k=1':>10}{'CRP k=10':>10}",
        "-" * 55,
    ]
    movement_ratios = []
    for name in designs:
        row = [f"{name:<15}"]
        base = results[(name, "baseline")]
        for variant in VARIANTS:
            res = results[(name, variant)]
            if res.failed:
                row.append(f"{'Failed':>10}")
            else:
                row.append(f"{res.total_runtime:>10.1f}")
        lines.append("".join(row))
        crp1 = results[(name, "crp1")]
        crp10 = results[(name, "crp10")]
        move1 = crp1.runtime.get("CRP", 0.0)
        move10 = crp10.runtime.get("CRP", 0.0)
        if move1 > 0.05:
            movement_ratios.append(move10 / move1)
    write_table("fig2", lines)

    # Shape: k=10 movement stage grows sub-exponentially (roughly
    # linear in k => ratio well under k^2; allow generous slack).
    for ratio in movement_ratios:
        assert ratio < 40.0, f"CRP k=10/k=1 runtime ratio {ratio:.1f} too steep"

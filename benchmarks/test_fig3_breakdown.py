"""Fig. 3 — percentage runtime breakdown of the CUGR+CR&P+DR flow.

Per design, the share of GR, Generate Candidate Positions (GCP),
Estimate Candidate Cost (ECC), Update Database (UD), other CR&P steps
(Misc), and detailed routing (DR).  Expected shape: ECC is the largest
CR&P step (it runs the 3D pattern router per candidate), and the whole
CR&P portion is comparable to or below the routing stages.
"""

from __future__ import annotations

from conftest import flow_result, write_table


def test_fig3_breakdown(benchmark, designs):
    from repro.flow import runtime_breakdown_pct
    from repro.flow.runtime import FIG3_STAGES

    def run_all():
        return {name: flow_result(name, "crp10") for name in designs}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    header = f"{'Benchmark':<15}" + "".join(f"{s:>8}" for s in FIG3_STAGES)
    lines = [
        "Fig. 3: runtime breakdown (%) of GR + CR&P(k=10) + DR",
        header,
        "-" * len(header),
    ]
    for name in designs:
        pct = runtime_breakdown_pct(results[name])
        lines.append(
            f"{name:<15}" + "".join(f"{pct[s]:>8.1f}" for s in FIG3_STAGES)
        )
        # Shape: ECC dominates the CR&P-internal steps.
        crp_internal = {k: pct[k] for k in ("GCP", "ECC", "UD", "Misc")}
        assert pct["ECC"] == max(crp_internal.values()), (
            name,
            crp_internal,
        )
    write_table("fig3", lines)

"""Make ``src/`` importable when the package is not pip-installed.

The offline development environment lacks the ``wheel`` package, which
PEP 660 editable installs require; a ``.pth`` file or this shim keeps
``pytest`` working either way.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "tests"))

#!/usr/bin/env python
"""Performance benchmark for the cost-field kernel (BENCH_perf.json).

Times the four hot flow stages — initial ``route_all``, the RRR passes,
one CR&P iteration, and detailed routing — on two generated benchmarks
(fixed seeds from ``repro.benchgen.SUITE``), median of three runs, in
both cost modes: ``scalar`` (the reference ``CostModel`` oracle) and
``field`` (the dense :class:`repro.grid.field.CostField` kernel).

Every run asserts that the two modes produce *byte-identical* flow
quality (GR wirelength / vias / overflow and DR wirelength / vias /
DRVs) — the kernel is a pure speedup, never a behavior change.

Usage::

    python scripts/bench_perf.py -o BENCH_perf.json    # write baseline
    python scripts/bench_perf.py --check BENCH_perf.json   # CI gate

``--check`` reruns the benchmark and fails (exit 1) when the
field/scalar speedup of the ``gr_total`` stage regresses by more than
``--max-regression`` (default 25%) against the committed baseline, or
when cross-mode quality diverges.  Ratios, not absolute times, are
compared, so the gate is robust to machine speed.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.benchgen import make_design  # noqa: E402
from repro.ckpt import atomic_write  # noqa: E402
from repro.core import CrpFramework  # noqa: E402
from repro.droute import DetailedRouter  # noqa: E402
from repro.evalmetrics import evaluate  # noqa: E402
from repro.groute import GlobalRouter  # noqa: E402

SCHEMA = "repro.perf/bench-1"
BENCHES = ("ispd18_test1", "ispd18_test5")
RUNS = 3
RRR_PASSES = 3
STAGES = ("route_all", "rrr", "gr_total", "crp_iteration", "detailed")
#: the stage whose field/scalar speedup the CI gate enforces (the others
#: are too short on the small bench to compare robustly)
GATED_STAGE = "gr_total"


def run_once(bench: str, use_cost_field: bool) -> tuple[dict, dict]:
    """One full pass; returns (stage seconds, quality metrics)."""
    design = make_design(bench)
    times: dict[str, float] = {}

    t0 = time.perf_counter()
    router = GlobalRouter(design, use_cost_field=use_cost_field)
    router.route_all(rrr_passes=0)
    times["route_all"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    router.improve(RRR_PASSES)
    times["rrr"] = time.perf_counter() - t0
    times["gr_total"] = times["route_all"] + times["rrr"]

    quality = {
        "gr_wirelength_dbu": router.total_wirelength_dbu(),
        "gr_vias": router.total_vias(),
        "gr_overflow": router.total_overflow(),
    }

    framework = CrpFramework(design, router)
    t0 = time.perf_counter()
    framework.run_iteration(0)
    times["crp_iteration"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    guides = router.guides()
    dr_result = DetailedRouter(design).route_all(guides)
    times["detailed"] = time.perf_counter() - t0

    score = evaluate(design.name, design.tech, dr_result)
    quality["dr_wirelength_dbu"] = score.wirelength_dbu
    quality["dr_vias"] = score.vias
    quality["drvs"] = score.drvs
    return times, quality


def bench_design(bench: str) -> dict:
    """Median-of-RUNS stage times in both modes + the quality assert."""
    samples: dict[str, dict[str, list[float]]] = {
        "scalar": {s: [] for s in STAGES},
        "field": {s: [] for s in STAGES},
    }
    qualities: dict[str, dict] = {}
    for _ in range(RUNS):
        for mode, use_field in (("scalar", False), ("field", True)):
            times, quality = run_once(bench, use_field)
            for stage in STAGES:
                samples[mode][stage].append(times[stage])
            previous = qualities.setdefault(mode, quality)
            if previous != quality:
                raise SystemExit(
                    f"FAIL: {bench} {mode} mode is nondeterministic: "
                    f"{previous} != {quality}"
                )
    if qualities["scalar"] != qualities["field"]:
        raise SystemExit(
            f"FAIL: {bench} quality diverges between cost modes:\n"
            f"  scalar: {qualities['scalar']}\n"
            f"  field : {qualities['field']}"
        )
    stages = {}
    for stage in STAGES:
        scalar_s = statistics.median(samples["scalar"][stage])
        field_s = statistics.median(samples["field"][stage])
        stages[stage] = {
            "scalar_s": round(scalar_s, 6),
            "field_s": round(field_s, 6),
            "speedup": round(scalar_s / field_s, 4) if field_s > 0 else None,
        }
    return {
        "design": bench,
        "stages": stages,
        "quality": qualities["field"],
    }


def run_benchmarks() -> dict:
    designs = []
    for bench in BENCHES:
        print(f"benchmarking {bench} ({RUNS}x both modes)...", flush=True)
        designs.append(bench_design(bench))
    return {
        "schema": SCHEMA,
        "median_of": RUNS,
        "rrr_passes": RRR_PASSES,
        "gated_stage": GATED_STAGE,
        "designs": designs,
    }


def check(report: dict, baseline: dict, max_regression: float) -> int:
    """Compare speedup ratios against the committed baseline."""
    failures = []
    base_by_name = {d["design"]: d for d in baseline.get("designs", [])}
    for entry in report["designs"]:
        name = entry["design"]
        base = base_by_name.get(name)
        if base is None:
            failures.append(f"{name}: missing from baseline")
            continue
        current = entry["stages"][GATED_STAGE]["speedup"]
        committed = base["stages"][GATED_STAGE]["speedup"]
        floor = committed * (1.0 - max_regression)
        status = "ok" if current >= floor else "REGRESSION"
        print(
            f"{name}: {GATED_STAGE} speedup {current:.2f}x "
            f"(baseline {committed:.2f}x, floor {floor:.2f}x) {status}"
        )
        if current < floor:
            failures.append(
                f"{name}: {GATED_STAGE} speedup {current:.2f}x regressed "
                f">{max_regression:.0%} below baseline {committed:.2f}x"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", type=Path, help="write report JSON")
    parser.add_argument(
        "--check", type=Path, metavar="BASELINE",
        help="compare against a committed baseline; exit 1 on regression",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25,
        help="tolerated relative speedup regression (default 0.25)",
    )
    args = parser.parse_args()

    report = run_benchmarks()
    text = json.dumps(report, indent=1)
    if args.output:
        atomic_write(args.output, text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    if args.check:
        baseline = json.loads(args.check.read_text())
        return check(report, baseline, args.max_regression)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

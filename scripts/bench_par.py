#!/usr/bin/env python
"""Parallel-execution benchmark for ``repro.par`` (BENCH_par.json).

Times the three stages the parallel subsystem accelerates — initial
``route_all``, the RRR passes, and CR&P candidate estimation — on two
generated benchmarks, median of three runs, in four execution modes:
the classic serial walk (no executor) and the batched pipeline at
``workers`` 1, 2 and 4.

Every run asserts that all four modes produce *byte-identical* results
(a SHA-256 over every committed route, GR wirelength / vias /
overflow, and the full candidate-cost vector) — parallelism is a pure
speedup, never a behavior change.  The byte-equality assert always
runs; the speedup gates are conditional on the machine actually having
cores to parallelize over (``cpu_count`` is recorded in the report):

* ``cpu_count >= 2``: workers=2 must reach at least 0.9x serial on the
  gated ``par_total`` stage (parallel overhead must not eat the win),
* ``cpu_count >= 4``: workers=4 must reach at least 1.4x serial.

Usage::

    python scripts/bench_par.py -o BENCH_par.json       # write baseline
    python scripts/bench_par.py --check BENCH_par.json  # CI gate

``--check`` reruns the benchmark, applies the core-count-conditional
speedup gates, and verifies the quality block still matches the
committed baseline byte-for-byte (results are machine-independent, so
this doubles as a cross-machine determinism gate).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.benchgen import make_design  # noqa: E402
from repro.ckpt import atomic_write  # noqa: E402
from repro.core import CrpConfig  # noqa: E402
from repro.core.candidates import generate_candidates  # noqa: E402
from repro.core.estimate import estimate_candidate_cost  # noqa: E402
from repro.core.labeling import label_critical_cells  # noqa: E402
from repro.groute import GlobalRouter  # noqa: E402
from repro.par import ParallelExecutor  # noqa: E402

SCHEMA = "repro.par/bench-1"
BENCHES = ("ispd18_test2", "ispd18_test5")
RUNS = 3
RRR_PASSES = 3
WORKER_MODES = (1, 2, 4)
STAGES = ("route_all", "rrr", "estimate", "par_total")
#: the stage the speedup gates enforce (sum of all accelerated stages)
GATED_STAGE = "par_total"
#: workers=2 must not fall below this fraction of serial (2+ cores)
W2_FLOOR = 0.9
#: workers=4 must reach this speedup over serial (4+ cores)
W4_TARGET = 1.4


def mode_label(workers: int | None) -> str:
    return "serial" if workers is None else f"w{workers}"


def run_once(bench: str, workers: int | None) -> tuple[dict, dict]:
    """One pass in one mode; returns (stage seconds, quality digest)."""
    design = make_design(bench)
    router = GlobalRouter(design)
    executor = None
    if workers is not None:
        executor = ParallelExecutor(workers).bind(router)
    times: dict[str, float] = {}
    try:
        t0 = time.perf_counter()
        router.route_all(rrr_passes=0)
        times["route_all"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        router.improve(RRR_PASSES)
        times["rrr"] = time.perf_counter() - t0

        config = CrpConfig(seed=0, workers=None)
        critical = label_critical_cells(
            design, router, config, random.Random(config.seed)
        )
        candidates = generate_candidates(design, critical, config)
        flat = [c for group in candidates.values() for c in group]
        t0 = time.perf_counter()
        if executor is not None:
            costs = executor.run_estimates(flat, config.use_penalty)
        else:
            with router.pattern3d.using(router.cost, router.field):
                costs = [
                    estimate_candidate_cost(design, router, c) for c in flat
                ]
        times["estimate"] = time.perf_counter() - t0
        times["par_total"] = sum(times[s] for s in ("route_all", "rrr", "estimate"))
    finally:
        if executor is not None:
            executor.close()

    digest = hashlib.sha256()
    for name in sorted(router.routes):
        digest.update(name.encode())
        digest.update(repr(sorted(router.routes[name].edges)).encode())
    quality = {
        "gr_wirelength_dbu": router.total_wirelength_dbu(),
        "gr_vias": router.total_vias(),
        "gr_overflow": round(router.total_overflow(), 6),
        "routes_sha256": digest.hexdigest(),
        "num_candidates": len(flat),
        "candidate_cost_sha256": hashlib.sha256(
            repr([round(c, 9) for c in costs]).encode()
        ).hexdigest(),
    }
    return times, quality


def bench_design(bench: str) -> dict:
    """Median-of-RUNS stage times per mode + the byte-equality assert."""
    modes: list[int | None] = [None, *WORKER_MODES]
    samples = {mode_label(m): {s: [] for s in STAGES} for m in modes}
    qualities: dict[str, dict] = {}
    for _ in range(RUNS):
        for workers in modes:
            label = mode_label(workers)
            times, quality = run_once(bench, workers)
            for stage in STAGES:
                samples[label][stage].append(times[stage])
            previous = qualities.setdefault(label, quality)
            if previous != quality:
                raise SystemExit(
                    f"FAIL: {bench} mode {label} is nondeterministic: "
                    f"{previous} != {quality}"
                )
    reference = qualities["serial"]
    for label, quality in qualities.items():
        if quality != reference:
            raise SystemExit(
                f"FAIL: {bench} results diverge between serial and {label}:\n"
                f"  serial: {reference}\n"
                f"  {label}: {quality}"
            )
    result_stages: dict[str, dict] = {}
    for stage in STAGES:
        entry: dict[str, object] = {}
        serial_s = statistics.median(samples["serial"][stage])
        entry["serial_s"] = round(serial_s, 6)
        for workers in WORKER_MODES:
            label = mode_label(workers)
            mode_s = statistics.median(samples[label][stage])
            entry[f"{label}_s"] = round(mode_s, 6)
            entry[f"{label}_speedup"] = (
                round(serial_s / mode_s, 4) if mode_s > 0 else None
            )
        result_stages[stage] = entry
    return {
        "design": bench,
        "stages": result_stages,
        "quality": reference,
    }


def run_benchmarks() -> dict:
    designs = []
    for bench in BENCHES:
        print(
            f"benchmarking {bench} ({RUNS}x serial + workers {WORKER_MODES})...",
            flush=True,
        )
        designs.append(bench_design(bench))
    return {
        "schema": SCHEMA,
        "median_of": RUNS,
        "rrr_passes": RRR_PASSES,
        "gated_stage": GATED_STAGE,
        "cpu_count": os.cpu_count() or 1,
        "worker_modes": list(WORKER_MODES),
        "designs": designs,
    }


def check(report: dict, baseline: dict) -> int:
    """Apply the core-conditional speedup gates + baseline quality diff."""
    failures = []
    cpus = report["cpu_count"]
    base_by_name = {d["design"]: d for d in baseline.get("designs", [])}
    for entry in report["designs"]:
        name = entry["design"]
        stage = entry["stages"][GATED_STAGE]
        base = base_by_name.get(name)
        if base is None:
            failures.append(f"{name}: missing from baseline")
        elif base["quality"] != entry["quality"]:
            failures.append(
                f"{name}: quality diverges from the committed baseline — "
                f"routing results are no longer machine-independent"
            )
        w2 = stage["w2_speedup"]
        w4 = stage["w4_speedup"]
        if cpus >= 2:
            status = "ok" if w2 >= W2_FLOOR else "REGRESSION"
            print(f"{name}: {GATED_STAGE} w2 {w2:.2f}x (floor {W2_FLOOR}x) {status}")
            if w2 < W2_FLOOR:
                failures.append(
                    f"{name}: workers=2 speedup {w2:.2f}x below the "
                    f"{W2_FLOOR}x floor on a {cpus}-core machine"
                )
        else:
            print(
                f"{name}: {GATED_STAGE} w2 {w2:.2f}x — gate skipped "
                f"(only {cpus} core)"
            )
        if cpus >= 4:
            status = "ok" if w4 >= W4_TARGET else "REGRESSION"
            print(f"{name}: {GATED_STAGE} w4 {w4:.2f}x (target {W4_TARGET}x) {status}")
            if w4 < W4_TARGET:
                failures.append(
                    f"{name}: workers=4 speedup {w4:.2f}x below the "
                    f"{W4_TARGET}x target on a {cpus}-core machine"
                )
        else:
            print(
                f"{name}: {GATED_STAGE} w4 {w4:.2f}x — gate skipped "
                f"(only {cpus} core(s))"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", type=Path, help="write report JSON")
    parser.add_argument(
        "--check", type=Path, metavar="BASELINE",
        help="apply the speedup gates and diff quality against a baseline",
    )
    args = parser.parse_args()

    report = run_benchmarks()
    text = json.dumps(report, indent=1)
    if args.output:
        atomic_write(args.output, text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    if args.check:
        baseline = json.loads(args.check.read_text())
        return check(report, baseline)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""CI durability gate for ``repro.ckpt`` + self-healing ``repro.par``.

Two scenarios, both asserting SHA-256 byte-equality of the final
committed routes and placement against an uninterrupted reference run
(the ``routes_digest`` / ``placement_digest`` every flow computes):

* **kill/resume (serial)** — a child process runs the checkpointing
  CR&P flow and SIGKILLs itself mid-iteration 2 (fault-injected after
  the ``CRP:1`` boundary checkpoint landed; no atexit, no flushing).
  The parent then resumes from the surviving checkpoints and must
  reproduce the reference byte-for-byte.

* **kill/resume (CRP_WORKERS=2, one injected worker death)** — the
  same surviving checkpoints are resumed on a 2-worker process pool
  while a forced ``par.heartbeat`` fault marks worker 0 dead; the pool
  supervisor must respawn it mid-run and the result must *still* match
  the serial reference byte-for-byte.

Usage::

    python scripts/ci_ckpt.py                 # the CI `ckpt` job
    python scripts/ci_ckpt.py -b ispd18_test1 -k 5
"""

from __future__ import annotations

import argparse
import shutil
import signal
import subprocess
import sys
import tempfile
import textwrap
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.benchgen import make_design  # noqa: E402
from repro.ckpt import CheckpointStore  # noqa: E402
from repro.core import CrpConfig  # noqa: E402
from repro.flow import run_flow  # noqa: E402
from repro.guard import FaultPlan, use_faults  # noqa: E402
from repro.obs import MetricsRegistry, use_metrics  # noqa: E402

#: the child must survive exactly one full iteration, then die in the
#: second: a forced ``None`` is a no-op for ``crp.select`` (iteration 1
#: passes through untouched), the second trigger raises ``KillSelf``
#: whose constructor SIGKILLs the process before any cleanup can run.
CHILD = textwrap.dedent(
    """
    import os, signal, sys
    sys.path.insert(0, {src!r})
    from repro.benchgen import make_design
    from repro.core import CrpConfig
    from repro.flow import run_flow
    from repro.guard import FaultPlan, install_faults

    class KillSelf(Exception):
        def __init__(self, *args):
            os.kill(os.getpid(), signal.SIGKILL)

    plan = FaultPlan()
    plan.force("crp.select", None, times=1)
    plan.fail("crp.select", KillSelf, times=1)
    install_faults(plan)
    run_flow(
        make_design({bench!r}),
        mode="crp",
        crp_iterations={k},
        config=CrpConfig(seed={seed}),
        checkpoint_dir={ckpt_dir!r},
        skip_detailed=True,
    )
    """
)


def flow(bench: str, k: int, seed: int, **kwargs):
    return run_flow(
        make_design(bench),
        mode="crp",
        crp_iterations=k,
        config=CrpConfig(seed=seed),
        skip_detailed=True,
        **kwargs,
    )


def digests(result) -> tuple[str, str]:
    return result.routes_digest, result.placement_digest


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-b", "--bench", default="ispd18_test1")
    parser.add_argument("-k", "--iterations", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    bench, k, seed = args.bench, args.iterations, args.seed
    failures: list[str] = []

    print(f"[1/4] uninterrupted reference: {bench} crp k={k}", flush=True)
    ref = digests(flow(bench, k, seed))

    workdir = Path(tempfile.mkdtemp(prefix="ci-ckpt-"))
    try:
        ckpt_dir = workdir / "ckpt"
        print("[2/4] child run, SIGKILL mid-iteration 2", flush=True)
        child = subprocess.run(
            [sys.executable, "-c", CHILD.format(
                src=str(ROOT / "src"), bench=bench, k=k, seed=seed,
                ckpt_dir=str(ckpt_dir),
            )],
            capture_output=True, text=True, timeout=1200,
        )
        if child.returncode != -signal.SIGKILL:
            print(child.stdout, end="")
            print(child.stderr, end="", file=sys.stderr)
            failures.append(
                f"child exited {child.returncode}, expected "
                f"-SIGKILL ({-signal.SIGKILL})"
            )
        names = [p.name for p in CheckpointStore(ckpt_dir).paths()]
        expected = ["ckpt-0000-GR0.ckpt", "ckpt-0001-CRP1.ckpt"]
        if names != expected:
            failures.append(f"surviving checkpoints {names} != {expected}")
        # the serial resume below appends new boundary checkpoints to
        # ckpt_dir, so the workers=2 scenario resumes from a pristine copy
        w2_dir = workdir / "ckpt-w2"
        if ckpt_dir.is_dir():
            shutil.copytree(ckpt_dir, w2_dir)

        print("[3/4] serial resume, byte-equality vs reference", flush=True)
        resumed = flow(
            bench, k, seed, checkpoint_dir=str(ckpt_dir), resume=True
        )
        if resumed.resumed_from != "CRP:1":
            failures.append(
                f"serial resume started from {resumed.resumed_from!r}, "
                "expected 'CRP:1'"
            )
        if digests(resumed) != ref:
            failures.append(
                f"serial resume diverged: {digests(resumed)} != {ref}"
            )

        print(
            "[4/4] CRP_WORKERS=2 resume with one injected worker death",
            flush=True,
        )
        reg = MetricsRegistry()
        plan = FaultPlan().force("par.heartbeat", 0, times=1)
        with use_metrics(reg), use_faults(plan):
            par = flow(
                bench, k, seed, workers=2,
                checkpoint_dir=str(w2_dir), resume=True,
            )
        counters = reg.raw()["counters"]
        if par.resumed_from != "CRP:1":
            failures.append(
                f"workers=2 resume started from {par.resumed_from!r}, "
                "expected 'CRP:1'"
            )
        if digests(par) != ref:
            failures.append(
                f"workers=2 resume diverged: {digests(par)} != {ref}"
            )
        if plan.fired("par.heartbeat") < 1:
            failures.append(
                "the par.heartbeat fault never fired (supervisor did not "
                "scan a started pool)"
            )
        elif counters.get("par.respawns", 0) < 1:
            failures.append(
                "worker death was injected but par.respawns stayed 0 "
                f"(counters: {counters})"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"PASS: kill/resume byte-identical on {bench} "
            "(serial + workers=2 with a healed worker death); "
            f"routes {ref[0][:12]}… placement {ref[1][:12]}…"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

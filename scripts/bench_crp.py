#!/usr/bin/env python
"""CR&P incremental-kernel benchmark (BENCH_crp.json).

Times one ``crp_iteration`` (the full five-step CR&P loop) on two
generated benchmarks (fixed seeds from ``repro.benchgen.SUITE``) in
both kernel modes: ``slow`` (``CrpConfig.use_fast_ecc=False``, the
full-recompute oracle) and ``fast`` (the incremental kernel: ECC
pricing cache, O(dirty-nets) cost accounting, window-ILP memo +
specialized exact window solver).  Runs are interleaved fast/slow so
machine noise hits both modes alike; the reported time is the median.

Every run asserts the two modes are *byte-identical*: SHA-256 digests
over the chosen moves (all cell positions after the iteration), the
committed routes (sorted edge lists), and the flow quality (GR
wirelength / vias / overflow / total route cost) must match between
modes, between repeat runs of one mode, and between serial and
``--workers 2`` execution.  The kernel is a pure speedup, never a
behavior change.

Usage::

    python scripts/bench_crp.py -o BENCH_crp.json          # write baseline
    python scripts/bench_crp.py --check BENCH_crp.json     # CI gate
    python scripts/bench_crp.py --designs ispd18_test1 ... # subset (CI)

``--check`` fails (exit 1) when a mode pair diverges byte-wise (always
fatal, even without ``--check``), when a freshly measured
``ispd18_test5`` speedup falls below ``--min-speedup`` (default 2.0),
or when the committed baseline's ``ispd18_test5`` entry is below the
floor — so a CI run that only re-measures the small design still
vouches for the committed large-design numbers.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import scipy.optimize  # noqa: F401,E402 — hoist the one-time solver import out of timed regions

from repro.benchgen import make_design  # noqa: E402
from repro.ckpt import atomic_write  # noqa: E402
from repro.core import CrpFramework  # noqa: E402
from repro.core.config import CrpConfig  # noqa: E402
from repro.groute import GlobalRouter  # noqa: E402

SCHEMA = "repro.crp/bench-1"
BENCHES = ("ispd18_test1", "ispd18_test5")
RUNS = 5
RRR_PASSES = 3
#: the design whose fast/slow speedup the CI gate enforces (test1 is
#: too short for a robust ratio; it is still byte-equality-checked)
GATED_DESIGN = "ispd18_test5"
MIN_SPEEDUP = 2.0


def _digest(payload: object) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def run_once(bench: str, fast: bool, workers: int = 0) -> tuple[float, dict]:
    """One routed design + one CR&P iteration; returns (seconds, digests)."""
    design = make_design(bench)
    router = GlobalRouter(design)
    executor = None
    if workers:
        from repro.par import ParallelExecutor

        executor = ParallelExecutor(workers).bind(router)
    try:
        router.route_all(rrr_passes=RRR_PASSES)
        framework = CrpFramework(
            design, router, CrpConfig(use_fast_ecc=fast)
        )
        t0 = time.perf_counter()
        framework.run_iteration(0)
        seconds = time.perf_counter() - t0
        digests = {
            "moves": _digest(
                sorted(
                    (name, cell.x, cell.y, str(cell.orient))
                    for name, cell in design.cells.items()
                )
            ),
            "routes": _digest(
                sorted(
                    (name, sorted(map(str, route.edges)))
                    for name, route in router.routes.items()
                )
            ),
            "quality": _digest(
                {
                    "wirelength_dbu": router.total_wirelength_dbu(),
                    "vias": router.total_vias(),
                    "overflow": router.total_overflow(),
                    "total_route_cost": framework._total_route_cost(),
                }
            ),
        }
    finally:
        if executor is not None:
            executor.close()
    return seconds, digests


def bench_design(bench: str, workers: int) -> dict:
    """Interleaved median-of-RUNS timing plus the byte-equality asserts."""
    samples: dict[str, list[float]] = {"fast": [], "slow": []}
    digests: dict[str, dict] = {}
    for _ in range(RUNS):
        for mode, fast in (("fast", True), ("slow", False)):
            seconds, run_digests = run_once(bench, fast)
            samples[mode].append(seconds)
            previous = digests.setdefault(mode, run_digests)
            if previous != run_digests:
                raise SystemExit(
                    f"FAIL: {bench} {mode} mode is nondeterministic: "
                    f"{previous} != {run_digests}"
                )
    if digests["fast"] != digests["slow"]:
        raise SystemExit(
            f"FAIL: {bench} fast/slow kernels diverge byte-wise:\n"
            f"  fast: {digests['fast']}\n"
            f"  slow: {digests['slow']}"
        )
    workers_entry = None
    if workers:
        workers_entry = {}
        for mode, fast in (("fast", True), ("slow", False)):
            seconds, run_digests = run_once(bench, fast, workers=workers)
            if run_digests != digests[mode]:
                raise SystemExit(
                    f"FAIL: {bench} {mode} diverges at workers={workers}: "
                    f"{run_digests} != {digests[mode]}"
                )
            workers_entry[f"{mode}_s"] = round(seconds, 6)
        workers_entry["workers"] = workers
    fast_s = statistics.median(samples["fast"])
    slow_s = statistics.median(samples["slow"])
    entry = {
        "design": bench,
        "crp_iteration": {
            "slow_s": round(slow_s, 6),
            "fast_s": round(fast_s, 6),
            "speedup": round(slow_s / fast_s, 4) if fast_s > 0 else None,
        },
        "digests": digests["fast"],
    }
    if workers_entry is not None:
        entry["workers_run"] = workers_entry
    return entry


def run_benchmarks(benches: tuple[str, ...], workers: int) -> dict:
    designs = []
    for bench in benches:
        print(
            f"benchmarking {bench} ({RUNS}x interleaved fast/slow"
            f"{f', plus workers={workers} parity' if workers else ''})...",
            flush=True,
        )
        designs.append(bench_design(bench, workers))
    return {
        "schema": SCHEMA,
        "median_of": RUNS,
        "rrr_passes": RRR_PASSES,
        "gated_design": GATED_DESIGN,
        "min_speedup": MIN_SPEEDUP,
        "designs": designs,
    }


def check(report: dict, baseline: dict, min_speedup: float) -> int:
    """Byte-equality already held (run_benchmarks raises otherwise);
    enforce the speedup floor on fresh and committed numbers."""
    failures = []
    for entry in report["designs"]:
        name = entry["design"]
        speedup = entry["crp_iteration"]["speedup"]
        gated = name == GATED_DESIGN
        status = "ok" if (not gated or speedup >= min_speedup) else "TOO SLOW"
        print(
            f"{name}: crp_iteration {speedup:.2f}x "
            f"({'gated, floor ' + format(min_speedup, '.2f') + 'x' if gated else 'informational'}) "
            f"{status}"
        )
        if gated and speedup < min_speedup:
            failures.append(
                f"{name}: measured speedup {speedup:.2f}x < {min_speedup:.2f}x"
            )
    committed = {
        d["design"]: d for d in baseline.get("designs", [])
    }.get(GATED_DESIGN)
    if committed is None:
        failures.append(f"baseline is missing the {GATED_DESIGN} entry")
    else:
        speedup = committed["crp_iteration"]["speedup"]
        print(
            f"baseline {GATED_DESIGN}: crp_iteration {speedup:.2f}x "
            f"(floor {min_speedup:.2f}x) "
            f"{'ok' if speedup >= min_speedup else 'TOO SLOW'}"
        )
        if speedup < min_speedup:
            failures.append(
                f"baseline {GATED_DESIGN} speedup {speedup:.2f}x "
                f"< {min_speedup:.2f}x"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", type=Path, help="write report JSON")
    parser.add_argument(
        "--check", type=Path, metavar="BASELINE",
        help="gate against a committed baseline; exit 1 on failure",
    )
    parser.add_argument(
        "--designs", default=",".join(BENCHES),
        help="comma-separated subset of designs to measure",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="also assert byte-equality under this executor width "
        "(0 disables the parallel parity run)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=MIN_SPEEDUP,
        help=f"gated-design speedup floor (default {MIN_SPEEDUP})",
    )
    args = parser.parse_args()

    benches = tuple(
        name for name in args.designs.split(",") if name.strip()
    )
    report = run_benchmarks(benches, args.workers)
    text = json.dumps(report, indent=1)
    if args.output:
        atomic_write(args.output, text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    if args.check:
        baseline = json.loads(args.check.read_text())
        return check(report, baseline, args.min_speedup)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Refresh the measured-results section of EXPERIMENTS.md.

Copies every table under bench_results/ into the section after the
``<!-- RESULTS -->`` marker.  Run after ``pytest benchmarks/
--benchmark-only``.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.ckpt import atomic_write  # noqa: E402

MARKER = "<!-- RESULTS -->"

ORDER = [
    "table2",
    "table3",
    "fig2",
    "fig3",
    "ablation_penalty",
    "ablation_selection",
    "ablation_via_demand",
    "ablation_window",
]


def main() -> None:
    experiments = ROOT / "EXPERIMENTS.md"
    text = experiments.read_text()
    head, _, _ = text.partition(MARKER)
    blocks = [head.rstrip() + "\n\n" + MARKER + "\n"]
    for name in ORDER:
        path = ROOT / "bench_results" / f"{name}.txt"
        if not path.exists():
            continue
        blocks.append(f"\n### {name}\n\n```\n{path.read_text().rstrip()}\n```\n")
    atomic_write(experiments, "".join(blocks))
    print(f"updated {experiments}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Detailed-routing kernel benchmark (BENCH_droute.json).

Times the full detailed-routing pass (first pass + conflict rounds +
DRC) on generated benchmarks with both backends — the dict-of-tuples
oracle (``use_indexed=False``) and the flat indexed kernel
(``use_indexed=True``, the production default) — best of three
interleaved runs over one shared set of global-routing guides per
design.  Like ``timeit``, the *minimum* is reported per backend: the
kernel's work is deterministic, so the fastest run is the one least
disturbed by scheduler interference, and the min is far more stable
than the median on busy single-core runners.

Every run asserts that the two backends produce *byte-identical*
results (a SHA-256 over every routed path, plus DRVs / wirelength /
vias) — the indexed kernel is a pure speedup, never a behavior change.
The byte-equality assert always runs; the speedup gate compares the
oracle/indexed *ratio* (never absolute times), so it is robust to
runner speed:

* ``ispd18_test5``: the indexed kernel must be at least 2x the oracle.

Usage::

    python scripts/bench_droute.py -o BENCH_droute.json       # baseline
    python scripts/bench_droute.py --check BENCH_droute.json  # CI gate

``--check`` reruns the benchmark, applies the speedup gate, and
verifies the quality block still matches the committed baseline
byte-for-byte (results are machine-independent, so this doubles as a
cross-machine determinism gate).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.benchgen import make_design  # noqa: E402
from repro.ckpt import atomic_write  # noqa: E402
from repro.droute import DetailedRouter  # noqa: E402
from repro.groute import GlobalRouter  # noqa: E402

SCHEMA = "repro.droute/bench-1"
BENCHES = ("ispd18_test1", "ispd18_test5")
RUNS = 3
MODES = ("oracle", "indexed")
#: minimum indexed-over-oracle speedup, per gated design
SPEEDUP_GATES = {"ispd18_test5": 2.0}


def quality_of(result) -> dict:
    """Machine-independent digest of one DetailedResult."""
    digest = hashlib.sha256()
    for name in sorted(result.paths):
        digest.update(name.encode())
        digest.update(repr(result.paths[name]).encode())
    return {
        "wirelength_dbu": result.wirelength_dbu,
        "vias": result.vias,
        "num_drvs": result.num_drvs,
        "drv_counts": result.drv_counts(),
        "paths_sha256": digest.hexdigest(),
    }


def bench_design(bench: str) -> dict:
    """Best-of-RUNS DR wall time per backend + byte-equality assert."""
    design = make_design(bench)
    router = GlobalRouter(design)
    router.route_all(rrr_passes=0)
    guides = router.guides()

    samples: dict[str, list[float]] = {mode: [] for mode in MODES}
    qualities: dict[str, dict] = {}
    for _ in range(RUNS):
        for mode in MODES:
            detailed = DetailedRouter(design, use_indexed=(mode == "indexed"))
            t0 = time.perf_counter()
            result = detailed.route_all(guides)
            samples[mode].append(time.perf_counter() - t0)
            quality = quality_of(result)
            previous = qualities.setdefault(mode, quality)
            if previous != quality:
                raise SystemExit(
                    f"FAIL: {bench} backend {mode} is nondeterministic: "
                    f"{previous} != {quality}"
                )
    if qualities["indexed"] != qualities["oracle"]:
        raise SystemExit(
            f"FAIL: {bench} backends diverge:\n"
            f"  oracle:  {qualities['oracle']}\n"
            f"  indexed: {qualities['indexed']}"
        )
    oracle_s = min(samples["oracle"])
    indexed_s = min(samples["indexed"])
    return {
        "design": bench,
        "oracle_s": round(oracle_s, 6),
        "indexed_s": round(indexed_s, 6),
        "indexed_speedup": (
            round(oracle_s / indexed_s, 4) if indexed_s > 0 else None
        ),
        "quality": qualities["oracle"],
    }


def run_benchmarks() -> dict:
    designs = []
    for bench in BENCHES:
        print(f"benchmarking {bench} ({RUNS}x oracle + indexed)...", flush=True)
        designs.append(bench_design(bench))
    return {
        "schema": SCHEMA,
        "best_of": RUNS,
        "speedup_gates": SPEEDUP_GATES,
        "designs": designs,
    }


def check(report: dict, baseline: dict) -> int:
    """Apply the speedup gate + baseline quality diff."""
    failures = []
    base_by_name = {d["design"]: d for d in baseline.get("designs", [])}
    for entry in report["designs"]:
        name = entry["design"]
        base = base_by_name.get(name)
        if base is None:
            failures.append(f"{name}: missing from baseline")
        elif base["quality"] != entry["quality"]:
            failures.append(
                f"{name}: quality diverges from the committed baseline — "
                f"routing results are no longer machine-independent"
            )
        speedup = entry["indexed_speedup"]
        floor = SPEEDUP_GATES.get(name)
        if floor is None:
            print(f"{name}: indexed {speedup:.2f}x (ungated)")
            continue
        status = "ok" if speedup >= floor else "REGRESSION"
        print(f"{name}: indexed {speedup:.2f}x (floor {floor}x) {status}")
        if speedup < floor:
            failures.append(
                f"{name}: indexed kernel speedup {speedup:.2f}x below the "
                f"{floor}x floor"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", type=Path, help="write report JSON")
    parser.add_argument(
        "--check", type=Path, metavar="BASELINE",
        help="apply the speedup gate and diff quality against a baseline",
    )
    args = parser.parse_args()

    report = run_benchmarks()
    text = json.dumps(report, indent=1)
    if args.output:
        atomic_write(args.output, text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    if args.check:
        baseline = json.loads(args.check.read_text())
        return check(report, baseline)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
